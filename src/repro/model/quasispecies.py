"""The :class:`QuasispeciesModel` facade — the library's main entry point.

Bundles a mutation model and a fitness landscape, picks the best solver
for the structure at hand (mirroring the paper's Sections 3 and 5), and
exposes the biological readouts.

Examples
--------
>>> from repro import QuasispeciesModel
>>> from repro.landscapes import SinglePeakLandscape
>>> model = QuasispeciesModel(SinglePeakLandscape(10), p=0.01)
>>> result = model.solve()
>>> round(result.eigenvalue, 3) > 1.0
True
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.landscapes.kronecker import KroneckerLandscape
from repro.model.concentrations import class_concentrations
from repro.model.threshold import ThresholdSweep, sweep_error_rates
from repro.mutation.base import MutationModel
from repro.mutation.uniform import UniformMutation
from repro.operators.base import FORMS
from repro.operators.fmmp import Fmmp
from repro.operators.shifted import ShiftedOperator, conservative_shift
from repro.operators.smvp import Smvp
from repro.operators.xmvp import Xmvp
from repro.solvers.dense import dense_solve
from repro.solvers.kron_solver import KroneckerSolveResult, KroneckerSolver
from repro.solvers.lanczos import Lanczos
from repro.solvers.power import PowerIteration
from repro.solvers.reduced import ReducedSolver
from repro.solvers.result import SolveResult

__all__ = ["QuasispeciesModel"]

_METHODS = ("auto", "power", "dense", "reduced", "kronecker", "lanczos", "arnoldi")
_OPERATORS = ("fmmp", "xmvp", "smvp")


class QuasispeciesModel:
    """Eigen's quasispecies model for one landscape + mutation process.

    Parameters
    ----------
    landscape:
        The fitness landscape ``F``.
    mutation:
        An explicit mutation model, or ``None`` to build a
        :class:`UniformMutation` from ``p``.
    p:
        Uniform error rate shorthand (ignored when ``mutation`` given).
    """

    def __init__(
        self,
        landscape: FitnessLandscape,
        mutation: MutationModel | None = None,
        *,
        p: float | None = None,
    ):
        if mutation is None:
            if p is None:
                raise ValidationError("provide either a mutation model or an error rate p")
            mutation = UniformMutation(landscape.nu, p)
        elif p is not None and isinstance(mutation, UniformMutation) and mutation.p != p:
            raise ValidationError("conflicting error rates: mutation.p != p")
        if mutation.nu != landscape.nu:
            raise ValidationError(
                f"mutation (nu={mutation.nu}) and landscape (nu={landscape.nu}) disagree"
            )
        self.landscape = landscape
        self.mutation = mutation
        self.nu = landscape.nu
        self.n = landscape.n

    # ---------------------------------------------------------- structure
    @property
    def uniform_p(self) -> float | None:
        """The uniform error rate, if the mutation model is uniform."""
        return self.mutation.p if isinstance(self.mutation, UniformMutation) else None

    def _auto_method(self) -> str:
        if isinstance(self.landscape, KroneckerLandscape):
            try:
                KroneckerSolver(self.mutation, self.landscape)
                return "kronecker"
            except ValidationError:
                pass
        if (
            self.landscape.is_error_class_landscape
            and isinstance(self.mutation, UniformMutation)
        ):
            return "reduced"
        return "power"

    def build_operator(
        self,
        operator: str = "fmmp",
        *,
        form: str = "right",
        dmax: int | None = None,
        shift: bool | float = False,
        threads: int | None = None,
    ):
        """Construct the implicit ``W`` operator (optionally shifted).

        Parameters
        ----------
        operator:
            ``"fmmp"`` (paper, exact fast), ``"xmvp"`` (baseline [10];
            needs ``dmax``), ``"smvp"`` (dense baseline).
        form:
            Eigenproblem form (Eqs. 3–5).
        dmax:
            Cut-off distance for ``xmvp`` (defaults to ν, the exact case).
        shift:
            ``True`` → the paper's conservative ``μ = (1−2p)^ν f_min``
            (uniform mutation only); a float → that explicit shift;
            ``False`` → unshifted.
        threads:
            Engine threads for the panel-parallel ``fmmp`` butterfly
            (``None`` → ``REPRO_NUM_THREADS`` or 1); the baselines
            (``xmvp``/``smvp``) are serial and ignore it.
        """
        if operator not in _OPERATORS:
            raise ValidationError(f"operator must be one of {_OPERATORS}, got {operator!r}")
        if form not in FORMS:
            raise ValidationError(f"form must be one of {FORMS}, got {form!r}")
        if operator == "fmmp":
            op = Fmmp(self.mutation, self.landscape, form=form, threads=threads)
        elif operator == "xmvp":
            if not isinstance(self.mutation, UniformMutation):
                raise ValidationError("xmvp requires the uniform mutation model")
            op = Xmvp(self.mutation, self.landscape, dmax or self.nu, form=form)
        else:
            op = Smvp(self.mutation, self.landscape, form=form)

        if shift is False:
            return op
        if shift is True:
            if not isinstance(self.mutation, UniformMutation):
                raise ValidationError(
                    "the conservative shift formula needs the uniform model; "
                    "pass an explicit float shift instead"
                )
            mu = conservative_shift(self.mutation, self.landscape)
        else:
            mu = float(shift)
        return ShiftedOperator(op, mu)

    # --------------------------------------------------------------- solve
    def solve(
        self,
        method: str = "auto",
        *,
        operator: str = "fmmp",
        form: str = "right",
        dmax: int | None = None,
        tol: float = 1e-12,
        shift: bool | float = False,
        max_iterations: int = 100_000,
        record_history: bool = False,
        threads: int | None = None,
    ) -> SolveResult | KroneckerSolveResult:
        """Compute the quasispecies (dominant eigenpair of ``W``).

        ``method="auto"`` picks the structurally best solver:
        Kronecker decoupling → exact (ν+1) reduction → shifted
        ``Pi(Fmmp)``, in that order of preference.

        ``threads`` turns on the panel-parallel butterfly for the
        iterative ``fmmp`` routes (reductions stay deterministic via the
        operator's panel reducer); the structural routes (kronecker /
        reduced / dense) are unaffected.
        """
        if method not in _METHODS:
            raise ValidationError(f"method must be one of {_METHODS}, got {method!r}")
        if method == "auto":
            method = self._auto_method()
            if method == "power" and shift is False and isinstance(self.mutation, UniformMutation):
                # Default acceleration in auto mode — except at the fully
                # degenerate corner p = 0 on a flat landscape, where
                # W = f_min·I and the conservative shift would annihilate
                # W exactly (W − μI = 0 has no dominant direction).
                degenerate = (
                    self.mutation.p == 0.0
                    and self.landscape.fmin == self.landscape.fmax
                )
                if not degenerate:
                    shift = True

        if method == "kronecker":
            if not isinstance(self.landscape, KroneckerLandscape):
                raise ValidationError("kronecker method needs a KroneckerLandscape")
            return KroneckerSolver(self.mutation, self.landscape, tol=tol).solve()
        if method == "reduced":
            p = self.uniform_p
            if p is None:
                raise ValidationError("the reduced solver requires the uniform mutation model")
            return ReducedSolver(self.nu, p, self.landscape).solve()
        if method == "dense":
            return dense_solve(self.mutation, self.landscape, form=form)
        if method == "lanczos":
            op = self.build_operator(
                operator, form="symmetric", dmax=dmax, shift=False, threads=threads
            )
            start = np.sqrt(self.landscape.values())
            return Lanczos(op, tol=tol).solve(start, landscape=self.landscape, form="symmetric")
        if method == "arnoldi":
            from repro.solvers.arnoldi import Arnoldi

            op = self.build_operator(
                operator, form=form, dmax=dmax, shift=False, threads=threads
            )
            return Arnoldi(op, tol=tol).solve(
                self.landscape.start_vector(), landscape=self.landscape, form=form
            )

        op = self.build_operator(
            operator, form=form, dmax=dmax, shift=shift, threads=threads
        )
        pi = PowerIteration(
            op, tol=tol, max_iterations=max_iterations, record_history=record_history
        )
        label = f"Pi({operator.capitalize()}"
        if operator == "xmvp":
            label += f"({dmax or self.nu})"
        label += ", shifted)" if (shift is not False and shift != 0.0) else ")"
        return pi.solve(
            self.landscape.start_vector(),
            landscape=self.landscape,
            form=form,
            method_name=label,
        )

    # ------------------------------------------------------------ readouts
    def class_concentrations(self, result: SolveResult) -> np.ndarray:
        """``[Γ_k]`` from a full-vector solve result."""
        if result.concentrations.shape[0] == self.nu + 1:
            return result.concentrations  # reduced solver: already classes
        return class_concentrations(result.concentrations, self.nu)

    def sweep(self, error_rates: np.ndarray, *, parallel: bool = False) -> ThresholdSweep:
        """Error-rate sweep (exact reduced path; Hamming landscapes).

        ``parallel=True`` fans the grid points out over a process pool
        (identical results; see
        :func:`repro.model.parallel_sweep.parallel_sweep_error_rates`).
        """
        if parallel:
            from repro.model.parallel_sweep import parallel_sweep_error_rates

            return parallel_sweep_error_rates(self.landscape, error_rates)
        return sweep_error_rates(self.landscape, error_rates)

    def reproductive_values(self, *, tol: float = 1e-12) -> np.ndarray:
        """Fisher reproductive values of all genotypes (the left Perron
        vector; see :mod:`repro.solvers.left_eigen`)."""
        from repro.solvers.left_eigen import reproductive_values

        return reproductive_values(self.mutation, self.landscape, tol=tol)

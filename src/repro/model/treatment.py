"""Time-dependent error rates: mutagenic treatment courses.

The antiviral strategy of Sec. 1.1 works by *raising* p with a drug —
which in reality is a pharmacokinetic time course, not a constant.
This module extends the replicator–mutator dynamics (Eq. 1) to
``p = p(t)``:

    ẋ = Q(p(t))·F·x − Φ(t)·x,

with the same ``Θ(N log₂ N)`` per step (the butterfly just takes the
current 2×2 factor).  Schedules model onset/washout; integrating a dose
course shows delocalization during treatment and — because the
landscape is unchanged — recolonization of the master after washout if
the dose stops too early.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.transforms.butterfly import butterfly_transform
from repro.util.validation import check_error_rate, check_probability_vector

__all__ = ["ErrorRateSchedule", "constant", "ramp", "dose_course", "TimeVaryingQuasispeciesODE"]


@dataclass(frozen=True)
class ErrorRateSchedule:
    """A time course ``p(t)``, validated to stay in ``(0, 1/2]``.

    Attributes
    ----------
    fn:
        The schedule callable.
    description:
        Human-readable label for reports.
    """

    fn: Callable[[float], float]
    description: str = "schedule"

    def __call__(self, t: float) -> float:
        p = float(self.fn(float(t)))
        return check_error_rate(p)


def constant(p: float) -> ErrorRateSchedule:
    """A constant schedule (reduces to the ordinary dynamics)."""
    p = check_error_rate(p)
    return ErrorRateSchedule(lambda t: p, f"constant p={p}")


def ramp(p_start: float, p_end: float, t_ramp: float) -> ErrorRateSchedule:
    """Linear ramp from ``p_start`` to ``p_end`` over ``[0, t_ramp]``,
    constant afterwards."""
    p_start = check_error_rate(p_start)
    p_end = check_error_rate(p_end)
    if t_ramp <= 0:
        raise ValidationError("t_ramp must be positive")

    def fn(t: float) -> float:
        if t >= t_ramp:
            return p_end
        return p_start + (p_end - p_start) * max(t, 0.0) / t_ramp

    return ErrorRateSchedule(fn, f"ramp {p_start}->{p_end} over {t_ramp}")


def dose_course(
    p_base: float,
    p_peak: float,
    *,
    t_on: float,
    t_off: float,
    tau: float,
) -> ErrorRateSchedule:
    """A single treatment course with first-order pharmacokinetics.

    Drug level rises toward ``p_peak`` with time constant ``tau`` while
    administered (``t_on <= t < t_off``) and washes out with the same
    ``tau`` afterwards.
    """
    p_base = check_error_rate(p_base)
    p_peak = check_error_rate(p_peak)
    if not (0 <= t_on < t_off):
        raise ValidationError("need 0 <= t_on < t_off")
    if tau <= 0:
        raise ValidationError("tau must be positive")
    amplitude = p_peak - p_base

    def fn(t: float) -> float:
        if t < t_on:
            return p_base
        if t < t_off:
            return p_base + amplitude * (1.0 - np.exp(-(t - t_on) / tau))
        level_at_off = 1.0 - np.exp(-(t_off - t_on) / tau)
        return p_base + amplitude * level_at_off * np.exp(-(t - t_off) / tau)

    return ErrorRateSchedule(
        fn, f"dose: base {p_base}, peak {p_peak}, on [{t_on},{t_off}), tau {tau}"
    )


class TimeVaryingQuasispeciesODE:
    """Replicator–mutator dynamics with ``p = p(t)`` (uniform model).

    Parameters
    ----------
    landscape:
        The fitness landscape (fixed in time).
    schedule:
        The error-rate time course.
    """

    def __init__(self, landscape: FitnessLandscape, schedule: ErrorRateSchedule):
        self.landscape = landscape
        self.schedule = schedule
        self.nu = landscape.nu
        self.n = landscape.n
        self._f = landscape.values()

    # ------------------------------------------------------------ dynamics
    def rhs(self, t: float, x: np.ndarray) -> np.ndarray:
        """``ẋ = Q(p(t))·(F·x) − (fᵀx)·x``."""
        p = self.schedule(t)
        m = np.array([[1.0 - p, p], [p, 1.0 - p]])
        x = np.asarray(x, dtype=np.float64)
        w = self._f * x
        qw = butterfly_transform(w, [m] * self.nu, in_place=True)
        return qw - float(self._f @ x) * x

    def step_rk4(self, t: float, x: np.ndarray, dt: float) -> np.ndarray:
        """One time-aware classical RK4 step, renormalized."""
        k1 = self.rhs(t, x)
        k2 = self.rhs(t + 0.5 * dt, x + 0.5 * dt * k1)
        k3 = self.rhs(t + 0.5 * dt, x + 0.5 * dt * k2)
        k4 = self.rhs(t + dt, x + dt * k3)
        out = x + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        np.clip(out, 0.0, None, out=out)
        total = out.sum()
        if total <= 0.0:
            raise ConvergenceError("state collapsed; reduce dt")
        return out / total

    def integrate(
        self,
        x0: np.ndarray,
        *,
        t_end: float,
        dt: float = 0.05,
        observer: Callable[[float, np.ndarray], None] | None = None,
        observe_every: int = 1,
    ) -> np.ndarray:
        """Integrate to ``t_end``; ``observer(t, x)`` fires every
        ``observe_every`` steps (after the step)."""
        if dt <= 0 or t_end <= 0:
            raise ValidationError("dt and t_end must be positive")
        x = check_probability_vector(x0, self.n, "x0").copy()
        steps = int(np.ceil(t_end / dt))
        t = 0.0
        for k in range(steps):
            x = self.step_rk4(t, x, dt)
            t += dt
            if observer is not None and (k + 1) % max(1, observe_every) == 0:
                observer(t, x)
        return x

"""Process-parallel error-rate sweeps, served by the solver service.

A Fig. 1-style sweep solves one independent eigenproblem per grid point
— embarrassingly parallel, and exactly the workload the service layer
(:mod:`repro.service`) exists for.  The grid points become
content-addressed reduced :class:`~repro.service.jobspec.SolveJob`
requests: the scheduler dedups repeated error rates, the pool fans the
solves out over processes (sidestepping the GIL for the dense LAPACK
work inside the reduced solver), and the result cache makes re-sweeps
with overlapping grids free.

Only picklable primitives cross the process boundary (``nu``, ``p``,
the ν+1 class-fitness values), so any Hamming-structured landscape
works regardless of how it was constructed.  Results are bit-identical
to the serial :func:`repro.model.threshold.sweep_error_rates` path —
the reduced worker route runs the very same
:class:`~repro.solvers.reduced.ReducedSolver` call (asserted in the
regression tests).
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.model.threshold import ThresholdSweep, detect_error_threshold

__all__ = ["parallel_sweep_error_rates"]


def parallel_sweep_error_rates(
    landscape: FitnessLandscape,
    error_rates: np.ndarray,
    *,
    max_workers: int | None = None,
) -> ThresholdSweep:
    """Parallel counterpart of
    :func:`repro.model.threshold.sweep_error_rates` (bit-identical
    results, asserted in the tests).

    Parameters
    ----------
    landscape:
        A Hamming-structured landscape (the exact reduction applies).
    error_rates:
        Increasing grid of error rates.
    max_workers:
        Process count (default: ``os.cpu_count()``, capped at the number
        of grid points; 1 runs in-line with no pool).
    """
    # Deferred import: repro.model is imported by the service layer's
    # own dependencies, so binding at call time keeps the import graph
    # acyclic.
    from repro.service import SolveJob, SolverService

    if not landscape.is_error_class_landscape:
        raise ValidationError("parallel sweep needs a Hamming-distance landscape")
    rates = np.asarray(error_rates, dtype=np.float64).reshape(-1)
    if rates.size == 0 or np.any(np.diff(rates) <= 0):
        raise ValidationError("error_rates must be a non-empty increasing grid")
    nu = landscape.nu
    class_values = np.asarray(landscape.class_values(), dtype=np.float64)
    workers = max_workers or os.cpu_count() or 1
    workers = max(1, min(int(workers), rates.size))

    rows: dict[int, np.ndarray] = {}
    jobs: list = []
    job_rows: list[int] = []
    for i, p in enumerate(rates):
        if p == 0.0:
            # Error-free corner: the quasispecies is the delta on the
            # fittest class (no solve needed; matches the serial path).
            row = np.zeros(nu + 1)
            row[int(np.argmax(class_values))] = 1.0
            rows[i] = row
            continue
        jobs.append(
            SolveJob(
                nu=nu,
                p=float(p),
                landscape="hamming",
                class_values=tuple(float(v) for v in class_values),
                method="reduced",
            )
        )
        job_rows.append(i)

    if jobs:
        service = SolverService(
            workers=workers,
            kind="serial" if workers == 1 else "process",
            retries=1,
            capacity=max(1, len(jobs)),
        )
        report = service.submit(jobs)
        if not report.passed:
            raise ValidationError(
                "sweep jobs failed: " + "; ".join(report.failures())
            )
        for i, result in zip(job_rows, report.results):
            rows[i] = result.concentrations

    sweep = ThresholdSweep(
        nu=nu,
        error_rates=rates,
        class_concentrations=np.vstack([rows[i] for i in range(rates.size)]),
        landscape_name=type(landscape).__name__,
    )
    sweep.p_max = detect_error_threshold(sweep)
    return sweep

"""Process-parallel error-rate sweeps.

A Fig. 1-style sweep solves one independent eigenproblem per grid point
— embarrassingly parallel.  This module fans the grid out over a
process pool (sidestepping the GIL for the dense LAPACK work inside the
reduced solver) and reassembles the
:class:`~repro.model.threshold.ThresholdSweep`.

Only picklable primitives cross the process boundary (``nu``, ``p``,
the ν+1 class-fitness values), so any Hamming-structured landscape
works regardless of how it was constructed.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.model.threshold import ThresholdSweep, detect_error_threshold
from repro.solvers.reduced import ReducedSolver

__all__ = ["parallel_sweep_error_rates"]


def _solve_point(args: tuple[int, float, np.ndarray]) -> np.ndarray:
    """Worker: one reduced solve → class concentrations (module-level so
    it pickles under the spawn start method)."""
    nu, p, class_values = args
    if p == 0.0:
        row = np.zeros(nu + 1)
        row[int(np.argmax(class_values))] = 1.0
        return row
    return ReducedSolver(nu, float(p), np.asarray(class_values)).solve().concentrations


def parallel_sweep_error_rates(
    landscape: FitnessLandscape,
    error_rates: np.ndarray,
    *,
    max_workers: int | None = None,
) -> ThresholdSweep:
    """Parallel counterpart of
    :func:`repro.model.threshold.sweep_error_rates` (bit-identical
    results, asserted in the tests).

    Parameters
    ----------
    landscape:
        A Hamming-structured landscape (the exact reduction applies).
    error_rates:
        Increasing grid of error rates.
    max_workers:
        Process count (default: ``os.cpu_count()``, capped at the number
        of grid points).
    """
    if not landscape.is_error_class_landscape:
        raise ValidationError("parallel sweep needs a Hamming-distance landscape")
    rates = np.asarray(error_rates, dtype=np.float64).reshape(-1)
    if rates.size == 0 or np.any(np.diff(rates) <= 0):
        raise ValidationError("error_rates must be a non-empty increasing grid")
    nu = landscape.nu
    class_values = np.asarray(landscape.class_values(), dtype=np.float64)
    workers = max_workers or os.cpu_count() or 1
    workers = max(1, min(int(workers), rates.size))

    jobs = [(nu, float(p), class_values) for p in rates]
    if workers == 1:
        results = [_solve_point(j) for j in jobs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_solve_point, jobs, chunksize=max(1, len(jobs) // (4 * workers))))

    sweep = ThresholdSweep(
        nu=nu,
        error_rates=rates,
        class_concentrations=np.vstack(results),
        landscape_name=type(landscape).__name__,
    )
    sweep.p_max = detect_error_threshold(sweep)
    return sweep

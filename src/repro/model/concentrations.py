"""Concentration diagnostics on the stationary distribution.

Once the Perron vector ``x`` is known, the paper's biological readout is
the cumulative concentration of each error class,
``[Γ_k] = Σ_{j ∈ Γ_k} x_j`` (Sec. 1.1) — these are the curves of Fig. 1.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.popcount import distance_to_master
from repro.exceptions import ValidationError
from repro.util.binomial import binomial_row
from repro.util.validation import check_chain_length, check_vector

__all__ = [
    "class_concentrations",
    "uniform_class_concentrations",
    "dominant_sequence",
    "participation_ratio",
]


def class_concentrations(x: np.ndarray, nu: int) -> np.ndarray:
    """Cumulative concentrations ``[Γ_k]`` for ``k = 0..ν``.

    Parameters
    ----------
    x:
        Concentration vector of length ``2**nu`` (need not be normalized;
        sums are taken as given).
    nu:
        Chain length.
    """
    nu = check_chain_length(nu)
    x = check_vector(x, 1 << nu, "x")
    labels = distance_to_master(nu)
    return np.bincount(labels, weights=x, minlength=nu + 1)


def uniform_class_concentrations(nu: int) -> np.ndarray:
    """``[Γ_k]`` of the exactly uniform distribution: ``C(ν,k)/2^ν``.

    Above the error threshold all sequences occur equally, so the class
    concentrations differ only through class cardinality — this is why
    the Γ_k/Γ_{ν−k} curve pairs of Fig. 1 meet at the threshold.
    """
    nu = check_chain_length(nu, max_nu=1000)
    return binomial_row(nu) / 2.0**nu


def dominant_sequence(x: np.ndarray) -> tuple[int, float]:
    """Index and concentration of the most abundant sequence."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValidationError("expected a non-empty 1-D concentration vector")
    i = int(np.argmax(x))
    return i, float(x[i])


def participation_ratio(x: np.ndarray) -> float:
    """Effective number of occupied sequences ``(Σx)² / Σx²``.

    Ranges from 1 (single dominant sequence — ordered phase) to ``N``
    (uniform distribution — random replication).  A convenient scalar
    order parameter for threshold detection.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValidationError("expected a non-empty 1-D concentration vector")
    num = float(x.sum()) ** 2
    den = float((x * x).sum())
    if den == 0.0:
        raise ValidationError("zero vector has no participation ratio")
    return num / den

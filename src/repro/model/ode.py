"""The replicator–mutator ODE system (paper, Eq. 1).

    dx_i/dt = Σ_j f_j·Q_{i,j}·x_j(t) − x_i(t)·Φ(t),
    Φ(t)    = Σ_j f_j·x_j(t),          Σ_j x_j(t) = 1,

i.e. ``ẋ = W·x − Φ·x`` with ``W = Q·F`` applied through the *fast*
matvec — integrating the nonlinear dynamics costs the same
``Θ(N log₂ N)`` per step as one power-iteration step.

This module exists as the *physical* ground truth: the paper reduces the
search for the stationary distribution to an eigenproblem via the
standard Bernoulli change of variables; integrating Eq. (1) directly and
comparing against the eigenvector is the strongest end-to-end validation
the reproduction can do (see tests/test_model_ode.py).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.base import MutationModel
from repro.operators.fmmp import Fmmp
from repro.util.validation import check_probability_vector

__all__ = ["QuasispeciesODE", "integrate_to_stationary"]


class QuasispeciesODE:
    """Right-hand side and integrators for Eq. (1).

    Parameters
    ----------
    mutation, landscape:
        The model ingredients; the RHS uses ``Fmmp`` internally.
    """

    def __init__(self, mutation: MutationModel, landscape: FitnessLandscape):
        if mutation.nu != landscape.nu:
            raise ValidationError("mutation and landscape chain lengths disagree")
        self.mutation = mutation
        self.landscape = landscape
        self.n = mutation.n
        self._op = Fmmp(mutation, landscape, form="right")
        self._f = landscape.values()

    # ------------------------------------------------------------ dynamics
    def flux(self, x: np.ndarray) -> float:
        """The mean fitness ``Φ(t) = Σ_j f_j x_j`` (the dilution flux)."""
        return float(self._f @ x)

    def rhs(self, x: np.ndarray) -> np.ndarray:
        """``ẋ = W·x − Φ(x)·x``; tangent to the probability simplex
        (``Σ ẋ_i = 0`` because ``Q`` is column stochastic)."""
        wx = self._op.matvec(np.asarray(x, dtype=np.float64))
        return wx - self.flux(np.asarray(x, dtype=np.float64)) * np.asarray(x, dtype=np.float64)

    def master_start(self) -> np.ndarray:
        """The paper's initial condition ``x_0 = 1`` (pure master)."""
        x = np.zeros(self.n)
        x[0] = 1.0
        return x

    # ---------------------------------------------------------- integrators
    def step_rk4(self, x: np.ndarray, dt: float) -> np.ndarray:
        """One classical Runge–Kutta step, renormalized onto the simplex.

        Renormalization absorbs the ``O(dt⁵)`` drift off ``Σx = 1`` and
        keeps the integration stable over long horizons.
        """
        k1 = self.rhs(x)
        k2 = self.rhs(x + 0.5 * dt * k1)
        k3 = self.rhs(x + 0.5 * dt * k2)
        k4 = self.rhs(x + dt * k3)
        out = x + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        np.clip(out, 0.0, None, out=out)
        total = out.sum()
        if total <= 0.0:
            raise ConvergenceError("ODE state collapsed; step size too large")
        return out / total

    def integrate(
        self,
        x0: np.ndarray | None = None,
        *,
        t_end: float = 100.0,
        dt: float = 0.05,
        record_every: int = 0,
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Integrate to ``t_end`` with fixed-step RK4.

        Returns
        -------
        (x_final, trajectory)
            ``trajectory`` holds snapshots every ``record_every`` steps
            (empty when ``record_every=0``).
        """
        if dt <= 0.0 or t_end <= 0.0:
            raise ValidationError("dt and t_end must be positive")
        x = self.master_start() if x0 is None else check_probability_vector(x0, self.n, "x0").copy()
        steps = int(np.ceil(t_end / dt))
        trajectory: list[np.ndarray] = []
        for s in range(steps):
            x = self.step_rk4(x, dt)
            if record_every and (s + 1) % record_every == 0:
                trajectory.append(x.copy())
        return x, trajectory


def integrate_to_stationary(
    mutation: MutationModel,
    landscape: FitnessLandscape,
    *,
    x0: np.ndarray | None = None,
    dt: float = 0.05,
    tol: float = 1e-10,
    max_steps: int = 200_000,
) -> tuple[np.ndarray, int]:
    """Run the dynamics until ``‖ẋ‖₁ < tol`` and return ``(x*, steps)``.

    The fixed point of Eq. (1) on the simplex is exactly the normalized
    Perron vector of ``W`` with ``Φ = λ₀`` — this function converges to
    the same answer as the eigensolvers, just slower (it *is* a souped-up
    power iteration, which is the mathematical content of the Bernoulli
    change of variables).
    """
    ode = QuasispeciesODE(mutation, landscape)
    x = ode.master_start() if x0 is None else check_probability_vector(x0, ode.n, "x0").copy()
    for step in range(1, max_steps + 1):
        x_new = ode.step_rk4(x, dt)
        drift = float(np.abs(x_new - x).sum()) / dt
        x = x_new
        if drift < tol:
            return x, step
    raise ConvergenceError(
        f"dynamics did not become stationary within {max_steps} steps",
        iterations=max_steps,
        residual=drift,
    )

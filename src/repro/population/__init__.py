"""Finite-population stochastic dynamics.

The quasispecies ODE (Eq. 1) is the infinite-population limit.  The
paper's reference [11] (Nowak & Schuster 1989) studies what finite
populations do to the error threshold; this package provides the
standard Wright–Fisher simulator for the same mutation/selection
kernel, driven by the library's fast matvec, so the deterministic
solvers can be validated against (and contrasted with) stochastic
finite-N behaviour.
"""

from repro.population.wright_fisher import WrightFisher, TrajectoryStats
from repro.population.sparse import SparseWrightFisher

__all__ = ["WrightFisher", "TrajectoryStats", "SparseWrightFisher"]

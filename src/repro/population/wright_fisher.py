"""Wright–Fisher dynamics with mutation and selection.

One generation of a population of fixed size ``M``:

1. each individual of type ``j`` produces offspring in proportion to its
   fitness ``f_j``; each offspring mutates according to ``Q``, so the
   expected type distribution of the offspring pool is
   ``π = W·x / Σ(W·x)`` with ``x`` the current relative frequencies;
2. the next generation is ``M`` multinomial draws from ``π``.

As ``M → ∞`` the frequencies follow the discrete-time replicator–mutator
map whose fixed point is the quasispecies eigenvector — so the simulator
doubles as an independent stochastic validation of every deterministic
solver.  At finite ``M``, drift can push the master class extinct below
the deterministic threshold (the Nowak–Schuster finite-population
effect, [11] in the paper), which the error-threshold tests exercise.

The per-generation cost is one fast matvec (``Θ(N log₂ N)``) plus one
multinomial sample — the same scaling as a power-iteration step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.model.concentrations import class_concentrations
from repro.mutation.base import MutationModel
from repro.operators.fmmp import Fmmp
from repro.util.rng import as_generator

__all__ = ["WrightFisher", "TrajectoryStats"]


@dataclass
class TrajectoryStats:
    """Summary of a simulated trajectory.

    Attributes
    ----------
    generations:
        Generations simulated (after burn-in).
    mean_frequencies:
        Time-averaged relative frequencies (length ``N``).
    mean_class_concentrations:
        Time-averaged ``[Γ_k]``.
    master_extinction_generation:
        First generation at which the master-sequence count hit zero, or
        ``None`` if it survived throughout.
    mean_fitness:
        Time-averaged population mean fitness (the stochastic analogue
        of λ₀).
    """

    generations: int
    mean_frequencies: np.ndarray
    mean_class_concentrations: np.ndarray
    master_extinction_generation: int | None
    mean_fitness: float


class WrightFisher:
    """Finite-population Wright–Fisher process for a quasispecies model.

    Parameters
    ----------
    mutation, landscape:
        The model ingredients (must agree on ν).
    population_size:
        Number of individuals ``M`` (fixed each generation).
    seed:
        RNG seed or generator.

    Examples
    --------
    >>> from repro.mutation import UniformMutation
    >>> from repro.landscapes import SinglePeakLandscape
    >>> wf = WrightFisher(UniformMutation(6, 0.01), SinglePeakLandscape(6),
    ...                   population_size=500, seed=1)
    >>> counts = wf.step()
    >>> int(counts.sum())
    500
    """

    def __init__(
        self,
        mutation: MutationModel,
        landscape: FitnessLandscape,
        population_size: int,
        *,
        seed: int | np.random.Generator | None = None,
    ):
        if mutation.nu != landscape.nu:
            raise ValidationError("mutation and landscape chain lengths disagree")
        if population_size < 1:
            raise ValidationError(f"population size must be >= 1, got {population_size}")
        self.mutation = mutation
        self.landscape = landscape
        self.nu = mutation.nu
        self.n = mutation.n
        self.population_size = int(population_size)
        self._rng = as_generator(seed)
        self._op = Fmmp(mutation, landscape, form="right")
        self._f = landscape.values()
        self.reset()

    # ------------------------------------------------------------- state
    def reset(self, counts: np.ndarray | None = None) -> None:
        """Reset to all-master (default) or to explicit integer counts."""
        if counts is None:
            c = np.zeros(self.n, dtype=np.int64)
            c[0] = self.population_size
        else:
            c = np.asarray(counts, dtype=np.int64)
            if c.shape != (self.n,):
                raise ValidationError(f"counts must have shape ({self.n},)")
            if np.any(c < 0) or int(c.sum()) != self.population_size:
                raise ValidationError(
                    f"counts must be non-negative and sum to {self.population_size}"
                )
            c = c.copy()
        self.counts = c
        self.generation = 0

    @property
    def frequencies(self) -> np.ndarray:
        """Current relative type frequencies ``x``."""
        return self.counts / float(self.population_size)

    def mean_fitness(self) -> float:
        """Population mean fitness ``Σ f_i x_i`` of the current state."""
        return float(self._f @ self.frequencies)

    # ------------------------------------------------------------ dynamics
    def offspring_distribution(self) -> np.ndarray:
        """Expected offspring type distribution ``π = W·x / 1ᵀW·x``."""
        wx = self._op.matvec(self.frequencies)
        total = float(wx.sum())
        if total <= 0.0:
            raise ValidationError("degenerate population: zero reproductive output")
        pi = np.clip(wx, 0.0, None)
        return pi / pi.sum()

    def step(self) -> np.ndarray:
        """Advance one generation; returns the new counts (a view)."""
        pi = self.offspring_distribution()
        self.counts = self._rng.multinomial(self.population_size, pi).astype(np.int64)
        self.generation += 1
        return self.counts

    def run(
        self,
        generations: int,
        *,
        burn_in: int = 0,
        record_master: bool = True,
    ) -> TrajectoryStats:
        """Simulate and accumulate time-averaged statistics.

        Parameters
        ----------
        generations:
            Generations to average over (after ``burn_in``).
        burn_in:
            Unrecorded equilibration generations.
        record_master:
            Track the first master-extinction generation.
        """
        if generations < 1:
            raise ValidationError("generations must be >= 1")
        for _ in range(max(0, burn_in)):
            self.step()
        freq_sum = np.zeros(self.n)
        fitness_sum = 0.0
        extinction: int | None = None
        for _ in range(generations):
            self.step()
            freq = self.frequencies
            freq_sum += freq
            fitness_sum += float(self._f @ freq)
            if record_master and extinction is None and self.counts[0] == 0:
                extinction = self.generation
        mean_freq = freq_sum / generations
        return TrajectoryStats(
            generations=generations,
            mean_frequencies=mean_freq,
            mean_class_concentrations=class_concentrations(mean_freq, self.nu),
            master_extinction_generation=extinction,
            mean_fitness=fitness_sum / generations,
        )

"""Sparse Wright–Fisher for long chains (ν far beyond dense vectors).

The dense simulator stores all ``2^ν`` type counts; real populations
occupy a vanishing corner of sequence space, so for ν ≳ 25 the natural
representation is a dictionary ``{sequence: count}``.  Selection and
mutation are then simulated *per event* instead of through the matrix:

1. **selection** — offspring counts are multinomial over the present
   types with weights ``count·f``;
2. **mutation** — every offspring draws its number of point mutations
   from ``Binomial(ν, p)`` (the exact row model behind Eq. 2) and flips
   that many distinct uniformly-chosen sites.

This is the standard stochastic quasispecies algorithm; for sizes where
the dense simulator runs, the two agree in distribution (tested), and
it opens ν = 50+ finite-population experiments that no dense structure
could hold.

Fitness is supplied as a *callable* ``fitness(seq) -> float`` so that
landscapes too big to tabulate (Hamming-based, Kronecker ``value_at``)
plug in directly.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.bitops.popcount import popcount
from repro.exceptions import ValidationError
from repro.util.rng import as_generator
from repro.util.validation import check_chain_length, check_error_rate

__all__ = ["SparseWrightFisher"]


class SparseWrightFisher:
    """Dictionary-based Wright–Fisher process for long chains.

    Parameters
    ----------
    nu:
        Chain length (no ``2^ν`` structure is ever allocated).
    p:
        Uniform per-site error rate.
    fitness:
        Callable mapping a sequence (int) to its positive fitness.
    population_size:
        Fixed number of individuals ``M``.
    seed:
        RNG seed or generator.

    Examples
    --------
    >>> wf = SparseWrightFisher(50, 0.001, lambda s: 2.0 if s == 0 else 1.0,
    ...                         population_size=100, seed=1)
    >>> counts = wf.step()
    >>> sum(counts.values())
    100
    """

    def __init__(
        self,
        nu: int,
        p: float,
        fitness: Callable[[int], float],
        population_size: int,
        *,
        seed: int | np.random.Generator | None = None,
    ):
        self.nu = check_chain_length(nu, max_nu=10_000)
        self.p = check_error_rate(p)
        if population_size < 1:
            raise ValidationError(f"population size must be >= 1, got {population_size}")
        self.population_size = int(population_size)
        self._fitness = fitness
        self._rng = as_generator(seed)
        self._fitness_cache: dict[int, float] = {}
        self.reset()

    # ------------------------------------------------------------- helpers
    def _f(self, seq: int) -> float:
        val = self._fitness_cache.get(seq)
        if val is None:
            val = float(self._fitness(seq))
            if not val > 0.0:
                raise ValidationError(f"fitness of sequence {seq} must be positive, got {val}")
            self._fitness_cache[seq] = val
        return val

    def _mutate(self, seq: int, n_offspring: int) -> dict[int, int]:
        """Mutate ``n_offspring`` copies of ``seq``; returns type counts."""
        out: dict[int, int] = {}
        # Number of point mutations per offspring ~ Binomial(nu, p);
        # offspring with zero mutations stay put (the common case).
        k = self._rng.binomial(self.nu, self.p, size=n_offspring)
        unmutated = int((k == 0).sum())
        if unmutated:
            out[seq] = out.get(seq, 0) + unmutated
        for kk in k[k > 0]:
            sites = self._rng.choice(self.nu, size=int(kk), replace=False)
            child = seq
            for s in sites:
                child ^= 1 << int(s)
            out[child] = out.get(child, 0) + 1
        return out

    # ------------------------------------------------------------- state
    def reset(self, counts: dict[int, int] | None = None) -> None:
        """Reset to all-master (default) or to explicit sparse counts."""
        if counts is None:
            self.counts = {0: self.population_size}
        else:
            total = sum(counts.values())
            if total != self.population_size or any(c < 0 for c in counts.values()):
                raise ValidationError(
                    f"counts must be non-negative and sum to {self.population_size}"
                )
            for seq in counts:
                if not 0 <= seq < (1 << self.nu):
                    raise ValidationError(f"sequence {seq} out of range for nu={self.nu}")
            self.counts = {s: c for s, c in counts.items() if c > 0}
        self.generation = 0

    @property
    def support_size(self) -> int:
        """Distinct sequence types currently present."""
        return len(self.counts)

    def mean_fitness(self) -> float:
        return (
            sum(c * self._f(s) for s, c in self.counts.items()) / self.population_size
        )

    def mean_distance_to_master(self) -> float:
        """Average Hamming distance of the population from ``X_0``."""
        return (
            sum(c * popcount(s) for s, c in self.counts.items()) / self.population_size
        )

    # ------------------------------------------------------------ dynamics
    def step(self) -> dict[int, int]:
        """One Wright–Fisher generation (selection, then mutation)."""
        types = list(self.counts.keys())
        weights = np.array([self.counts[s] * self._f(s) for s in types], dtype=np.float64)
        weights /= weights.sum()
        offspring = self._rng.multinomial(self.population_size, weights)
        new_counts: dict[int, int] = {}
        for seq, n in zip(types, offspring):
            if n == 0:
                continue
            for child, c in self._mutate(seq, int(n)).items():
                new_counts[child] = new_counts.get(child, 0) + c
        self.counts = new_counts
        self.generation += 1
        return self.counts

    def run(self, generations: int) -> dict[str, float]:
        """Simulate and return summary statistics of the final state."""
        if generations < 1:
            raise ValidationError("generations must be >= 1")
        master_extinction: int | None = None
        for _ in range(generations):
            self.step()
            if master_extinction is None and self.counts.get(0, 0) == 0:
                master_extinction = self.generation
        return {
            "generations": float(generations),
            "support_size": float(self.support_size),
            "mean_fitness": self.mean_fitness(),
            "mean_distance": self.mean_distance_to_master(),
            "master_fraction": self.counts.get(0, 0) / self.population_size,
            "master_extinction_generation": (
                float("nan") if master_extinction is None else float(master_extinction)
            ),
        }

"""Matvec with a Kronecker product of small dense factors.

The generalized mutation processes of the paper (Eq. 11) replace the
uniform 2×2 factor by ``g`` arbitrary column-stochastic blocks
``Q_{G_i} ∈ R^{2^{g_i} × 2^{g_i}}``.  A matvec with
``M = M_1 ⊗ M_2 ⊗ … ⊗ M_g`` costs ``Θ(N · Σᵢ mᵢ)`` where ``mᵢ`` is the
dimension of factor ``i`` — for bounded group sizes this stays
``Θ(N log N)``-ish, exactly the paper's point that moderate ``g_i`` keep
the method fast.

Convention: factor ``M_1`` (index 0 here) acts on the *most significant*
block of index bits, matching the recursive block structure of Eq. (8).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["kron_matvec", "kron_vector", "kron_diagonal"]


def _check_factors(factors: Sequence[np.ndarray]) -> list[np.ndarray]:
    if len(factors) == 0:
        raise ValidationError("at least one Kronecker factor is required")
    checked = []
    for idx, f in enumerate(factors):
        arr = np.asarray(f, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValidationError(
                f"Kronecker factor {idx} must be square, got shape {arr.shape}"
            )
        if arr.shape[0] < 1:
            raise ValidationError(f"Kronecker factor {idx} is empty")
        checked.append(arr)
    return checked


def kron_matvec(factors: Sequence[np.ndarray], v: np.ndarray) -> np.ndarray:
    """Compute ``(M_1 ⊗ … ⊗ M_g) · v`` without forming the product.

    Parameters
    ----------
    factors:
        Square dense factors; the product of their dimensions must equal
        ``len(v)``.
    v:
        Input vector.

    Returns
    -------
    numpy.ndarray
        The product, a new ``float64`` vector.

    Notes
    -----
    Reshapes ``v`` into a ``g``-dimensional tensor (C order ⇒ axis 0 is
    the most significant block) and contracts each factor along its axis
    with :func:`numpy.tensordot`.  This is the standard dense multilinear
    algorithm behind every "fast Kronecker" method [van Loan 2000].
    """
    mats = _check_factors(factors)
    dims = [m.shape[0] for m in mats]
    n = int(np.prod(dims))
    v = np.asarray(v, dtype=np.float64)
    if v.shape != (n,):
        raise ValidationError(
            f"vector length {v.shape} incompatible with factor dims {dims} (product {n})"
        )
    x = v.reshape(dims)
    for axis, m in enumerate(mats):
        x = np.moveaxis(np.tensordot(m, x, axes=([1], [axis])), 0, axis)
    return np.ascontiguousarray(x.reshape(n))


def kron_vector(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Explicit Kronecker product of 1-D vectors ``v_1 ⊗ … ⊗ v_g``.

    Used to materialize (at small sizes) the implicitly-described
    eigenvectors of Kronecker-structured problems (paper, Sec. 5.2).
    """
    if len(vectors) == 0:
        raise ValidationError("at least one vector is required")
    out = np.asarray(vectors[0], dtype=np.float64).reshape(-1)
    for vec in vectors[1:]:
        nxt = np.asarray(vec, dtype=np.float64).reshape(-1)
        out = (out[:, None] * nxt[None, :]).reshape(-1)
    return out


def kron_diagonal(diagonals: Sequence[np.ndarray]) -> np.ndarray:
    """Diagonal of ``diag(d_1) ⊗ … ⊗ diag(d_g)`` — i.e. ``d_1 ⊗ … ⊗ d_g``.

    Kronecker fitness landscapes (Eq. 18) with diagonal factors have this
    as their fitness vector; alias of :func:`kron_vector` with intent in
    the name.
    """
    return kron_vector(diagonals)

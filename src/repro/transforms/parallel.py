"""Panel-parallel butterfly engine: the stage-fused kernel across cores.

The stage-fused batched kernel of :mod:`repro.transforms.batched` is
bandwidth-bound on a single core; this module runs the *identical*
sweep schedule on a persistent pool of worker threads, partitioning the
``(N, B)`` block into ``R = 2^r`` contiguous row **panels** on the high
index bits — the same layout under which
:class:`repro.distributed.partition.PartitionedVector` splits ranks.

Per fused sweep with group view ``(g, r, z)`` (``g`` butterfly groups of
``r`` rows of ``z = span·B`` contiguous doubles):

* **local sweeps** (``g >= R``, i.e. span ``r·h <= N/R``): every
  butterfly group lives inside one panel; panel ``p`` applies the fused
  ``matmul`` to its own contiguous run of groups — no sharing at all;
* **cross sweeps** (``g < R``): a butterfly group spans ``R/g`` panels;
  the group's ``z`` axis is cut into ``R/g`` whole-row chunks
  (``N/(r·R)`` rows each) and each work unit applies the full ``r×r``
  mix to its chunk, reading the partner panels' rows in place.

Both cuts slice :func:`numpy.matmul` along the *stacking* axis (local)
or the *column* axis in whole-row units (cross) — partitions NumPy/BLAS
evaluates with the very same per-element operation order as the
unsliced call.  Together with barrier synchronization between sweeps
and the fixed ping-pong buffer parity of the serial kernel, the result
is **bit-identical** to :func:`~repro.transforms.batched.batched_butterfly_transform`
for every panel count and thread count (asserted across the whole
model/form grid in the tests).  Slicing the *output rows* of a single
``matmul`` would *not* have this property (BLAS may pick a different
micro-kernel per shape), which is why the cross sweeps cut ``z`` and
not the mix rows.

NumPy releases the GIL inside the large slice kernels, so the panels
genuinely overlap on multicore hosts; see ``docs/performance.md`` for
the measured scaling and the auto-``R`` heuristic.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Sequence

import numpy as np

from repro.bitops.panels import panel_bounds, stage_is_local
from repro.exceptions import ValidationError
from repro.transforms.batched import (
    FusedStage,
    _check_block,
    _check_scale,
    batched_butterfly_transform,
    fused_stage_plan,
)

__all__ = [
    "PanelEngine",
    "PanelReducer",
    "parallel_butterfly_transform",
    "resolve_threads",
    "resolve_panels",
    "max_panels",
    "get_engine",
    "shutdown_engines",
    "THREADS_ENV",
]

#: Environment variable consulted when ``threads=None`` is passed.
THREADS_ENV = "REPRO_NUM_THREADS"

#: Per-sweep barrier timeout (seconds).  Generous: a sweep is a handful
#: of milliseconds even at ν = 24; hitting this means a worker died.
BARRIER_TIMEOUT_S = 120.0


def resolve_threads(threads: int | None) -> int:
    """Resolve a thread count: explicit value, else ``REPRO_NUM_THREADS``,
    else 1 (serial)."""
    if threads is None:
        raw = os.environ.get(THREADS_ENV, "1")
        try:
            threads = int(raw)
        except ValueError as exc:
            raise ValidationError(
                f"{THREADS_ENV} must be an integer, got {raw!r}"
            ) from exc
    if isinstance(threads, bool) or not isinstance(threads, (int, np.integer)):
        raise ValidationError(f"threads must be an integer, got {threads!r}")
    threads = int(threads)
    if threads < 1:
        raise ValidationError(f"threads must be >= 1, got {threads}")
    return threads


def max_panels(nu: int, *, radix4: bool = True) -> int:
    """Largest admissible panel count ``R`` for a ν-bit transform.

    Every sweep needs ``R <= N/radix`` so a cross sweep can cut each
    butterfly group's ``z`` axis into whole-row chunks; radix-4 plans
    (``ν >= 2``) therefore admit ``R <= N/4``, plain radix-2 plans
    ``R <= N/2``.
    """
    if nu < 1:
        raise ValidationError(f"nu must be >= 1, got {nu}")
    n = 1 << nu
    return max(1, n // (4 if (radix4 and nu >= 2) else 2))


def resolve_panels(
    panels: int | None,
    nu: int,
    *,
    threads: int = 1,
    radix4: bool = True,
) -> int:
    """Resolve the panel count ``R`` (a power of two).

    ``panels=None`` auto-picks the smallest power of two ``>= threads``;
    explicit *and* auto values are clamped down to :func:`max_panels`
    (small ν simply cannot host many panels — the clamp keeps sweeps
    like ``R=4`` at ``ν=2`` well-defined instead of erroring).
    """
    cap = max_panels(nu, radix4=radix4)
    if panels is None:
        r = 1
        while r < threads:
            r <<= 1
        return min(r, cap)
    if isinstance(panels, bool) or not isinstance(panels, (int, np.integer)):
        raise ValidationError(f"panels must be an integer, got {panels!r}")
    panels = int(panels)
    if panels < 1 or (panels & (panels - 1)) != 0:
        raise ValidationError(f"panels must be a positive power of two, got {panels}")
    return min(panels, cap)


class _Aborted(BaseException):
    """Internal: a participant saw the barrier break — unwind quietly."""


class PanelEngine:
    """Persistent SPMD worker-thread pool with a per-sweep barrier.

    The engine owns ``threads − 1`` daemon workers; the caller itself is
    participant 0, so ``threads=1`` degenerates to a plain function call
    with no synchronization at all.  :meth:`run` hands every participant
    the same callable ``fn(t)``; inside it, participants call
    :meth:`barrier_wait` between sweeps.  An exception in any
    participant aborts the barrier, unwinds the others, and re-raises in
    the caller.

    Engines are cheap to keep alive (workers sleep on a condition
    variable between jobs) — use :func:`get_engine` for a shared,
    per-thread-count instance.
    """

    def __init__(self, threads: int):
        threads = resolve_threads(threads)
        self.threads = threads
        self._barrier = threading.Barrier(threads) if threads > 1 else None
        self._cond = threading.Condition()
        self._generation = 0
        self._fn = None
        self._pending = 0
        self._errors: list[BaseException] = []
        self._closed = False
        self._workers: list[threading.Thread] = []
        for t in range(1, threads):
            w = threading.Thread(
                target=self._worker_loop,
                args=(t,),
                daemon=True,
                name=f"repro-panel-{t}",
            )
            w.start()
            self._workers.append(w)

    # ------------------------------------------------------------- workers
    def _worker_loop(self, t: int) -> None:
        seen = 0
        while True:
            with self._cond:
                while self._generation == seen and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return
                seen = self._generation
                fn = self._fn
            try:
                fn(t)
            except _Aborted:
                pass
            except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                with self._cond:
                    self._errors.append(exc)
                if self._barrier is not None:
                    self._barrier.abort()
            finally:
                with self._cond:
                    self._pending -= 1
                    if self._pending == 0:
                        self._cond.notify_all()

    # ------------------------------------------------------------ dispatch
    def barrier_wait(self) -> None:
        """Sweep barrier: every participant must arrive before any may
        continue.  No-op for a single-threaded engine."""
        if self._barrier is None:
            return
        try:
            self._barrier.wait(timeout=BARRIER_TIMEOUT_S)
        except threading.BrokenBarrierError:
            raise _Aborted() from None

    def run(self, fn) -> None:
        """Execute ``fn(t)`` on every participant ``t in [0, threads)``
        and wait for all of them; re-raises the first participant error."""
        if self.threads == 1:
            fn(0)
            return
        with self._cond:
            if self._closed:
                raise ValidationError("PanelEngine is closed")
            if self._pending:
                raise ValidationError("PanelEngine is already running a job")
            self._fn = fn
            self._errors.clear()
            self._pending = self.threads - 1
            self._generation += 1
            self._cond.notify_all()
        caller_exc: BaseException | None = None
        try:
            fn(0)
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            caller_exc = exc
            self._barrier.abort()
        with self._cond:
            while self._pending:
                self._cond.wait()
            errors = list(self._errors)
            self._errors.clear()
            self._fn = None
        broken = self._barrier.broken
        if broken:
            self._barrier.reset()
        if caller_exc is not None:
            raise caller_exc
        if errors:
            raise errors[0]
        if broken:
            raise ValidationError(
                "panel engine barrier broke without a recorded error "
                "(worker died or barrier timed out)"
            )

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for w in self._workers:
            w.join(timeout=5.0)


_ENGINES: dict[int, PanelEngine] = {}
_ENGINES_LOCK = threading.Lock()


def get_engine(threads: int | None = None) -> PanelEngine:
    """Shared persistent engine for ``threads`` participants (workers
    sleep between jobs; repeated transforms reuse the same pool)."""
    threads = resolve_threads(threads)
    with _ENGINES_LOCK:
        engine = _ENGINES.get(threads)
        if engine is None:
            engine = PanelEngine(threads)
            _ENGINES[threads] = engine
        return engine


def shutdown_engines() -> None:
    """Close and drop every cached engine (tests / interpreter teardown)."""
    with _ENGINES_LOCK:
        engines = list(_ENGINES.values())
        _ENGINES.clear()
    for engine in engines:
        engine.close()


# ---------------------------------------------------------------- sweeps
def _scale_unit(
    src: np.ndarray, dst: np.ndarray, scale: np.ndarray, p: int, panels: int
) -> None:
    """Panel ``p``'s rows of the elementwise pre-scale sweep."""
    r0, r1 = panel_bounds(src.shape[0], panels, p)
    s = scale[r0:r1, None] if scale.ndim == 1 else scale[r0:r1]
    np.multiply(src[r0:r1], s, out=dst[r0:r1])


def _post_unit(out: np.ndarray, post: np.ndarray, p: int, panels: int) -> None:
    """Panel ``p``'s rows of the in-place post-scale epilogue."""
    r0, r1 = panel_bounds(out.shape[0], panels, p)
    s = post[r0:r1, None] if post.ndim == 1 else post[r0:r1]
    np.multiply(out[r0:r1], s, out=out[r0:r1])


def _stage_units(n: int, b: int, stage: FusedStage, panels: int) -> int:
    """Effective work-unit count for one fused sweep.

    A cross-sweep ``z`` chunk must stay **at least two columns wide**:
    a single-column ``matmul`` operand drops BLAS onto the matrix-vector
    path, whose summation order differs from the matrix-matrix kernel's
    and would break bitwise identity with the serial sweep (probed
    empirically; width >= 2 chunks match the unsliced call exactly).
    Narrow sweeps (tiny ``span·B``) therefore run with fewer, wider
    units — still a power of two, still independent of the thread
    count, so the bits never depend on parallelism parameters.
    """
    r, h = stage.radix, stage.span
    g = n // (r * h)
    u = panels
    while u > g and (h // (u // g)) * b < 2:
        u //= 2
    return u


def _stage_unit(
    src: np.ndarray, dst: np.ndarray, stage: FusedStage, p: int, panels: int
) -> None:
    """Work unit ``p`` of a fused sweep: the group-axis slice (local) or
    the partner-reading whole-row ``z`` chunk (cross)."""
    n, b = src.shape
    r, h = stage.radix, stage.span
    g = n // (r * h)
    z = h * b
    src3 = src.reshape(g, r, z)
    dst3 = dst.reshape(g, r, z)
    if stage_is_local(h, r, n, panels):  # ⇔ g >= panels
        # Local sweep: panel p owns groups [p·g/R, (p+1)·g/R).
        g0, g1 = p * g // panels, (p + 1) * g // panels
        np.matmul(stage.matrix, src3[g0:g1], out=dst3[g0:g1])
    else:
        # Cross sweep: R/g work units per group, each mixing the full
        # r×r factor over a whole-row z-chunk of N/(r·R) rows.
        cpg = panels // g
        q, c = p // cpg, p % cpg
        zc = (h // cpg) * b
        sl = slice(c * zc, (c + 1) * zc)
        np.matmul(stage.matrix, src3[q][:, sl], out=dst3[q][:, sl])


def parallel_butterfly_transform(
    block: np.ndarray,
    factors: Sequence[np.ndarray],
    *,
    variant: str = "eq9",
    pre_scale: np.ndarray | None = None,
    post_scale: np.ndarray | None = None,
    radix4: bool = True,
    panels: int | None = None,
    threads: int | None = None,
    engine: PanelEngine | None = None,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Panel-parallel :func:`~repro.transforms.batched.batched_butterfly_transform`.

    Identical semantics, arguments and — by construction — *bits*:
    for every ``(panels, threads)`` combination the output equals the
    serial fused kernel's exactly.

    Parameters
    ----------
    block, factors, variant, pre_scale, post_scale, radix4, out, scratch:
        As for the serial kernel.
    panels:
        Panel count ``R`` (power of two); ``None`` auto-picks the
        smallest power of two ``>= threads``, clamped to
        :func:`max_panels`.
    threads:
        Participant count; ``None`` reads ``REPRO_NUM_THREADS``
        (default 1).  Ignored when ``engine`` is given.
    engine:
        A :class:`PanelEngine` to run on (defaults to the shared
        :func:`get_engine` pool for ``threads``).
    """
    work_in = _check_block(block, None, "block")
    n, b = work_in.shape
    nu = len(factors)
    if nu == 0:
        raise ValidationError("at least one factor is required")
    if n != (1 << nu):
        raise ValidationError(f"block must have 2**{nu} = {1 << nu} rows, got {n}")
    threads_n = engine.threads if engine is not None else resolve_threads(threads)
    panels_n = resolve_panels(panels, nu, threads=threads_n, radix4=radix4)
    if panels_n == 1:
        # One panel ⇒ the partitioned schedule is the serial schedule.
        return batched_butterfly_transform(
            work_in,
            factors,
            variant=variant,
            pre_scale=pre_scale,
            post_scale=post_scale,
            radix4=radix4,
            out=out,
            scratch=scratch,
        )
    pre = _check_scale(pre_scale, n, b, "pre_scale")
    post = _check_scale(post_scale, n, b, "post_scale")
    plan = fused_stage_plan(factors, variant=variant, radix4=radix4)
    steps = (1 if pre is not None else 0) + len(plan)

    def _buffer(buf: np.ndarray | None, name: str) -> np.ndarray:
        if buf is None:
            return np.empty((n, b), dtype=np.float64)
        if buf.shape != (n, b) or buf.dtype != np.float64 or not buf.flags.c_contiguous:
            raise ValidationError(
                f"{name} must be a C-contiguous float64 array of shape ({n}, {b})"
            )
        if np.shares_memory(buf, block):
            raise ValidationError(f"{name} must not alias the input block")
        return buf

    out = _buffer(out, "out")
    if steps > 1:
        scratch = _buffer(scratch, "scratch")
        if scratch is out or np.shares_memory(scratch, out):
            raise ValidationError("scratch must not alias out")
    eng = engine if engine is not None else get_engine(threads_n)
    nt = eng.threads

    def participant(t: int) -> None:
        # Fixed contiguous unit assignment: participant t executes work
        # units [t·R/T, (t+1)·R/T) of every sweep.  The unit→thread map
        # never affects the numbers (units are independent slices), so
        # any T gives the same bits.
        units = range(t * panels_n // nt, (t + 1) * panels_n // nt)
        src = work_in
        i = 0
        if pre is not None:
            dst = out if (steps - 1 - i) % 2 == 0 else scratch
            for p in units:
                _scale_unit(src, dst, pre, p, panels_n)
            eng.barrier_wait()
            src = dst
            i += 1
        for stage in plan:
            dst = out if (steps - 1 - i) % 2 == 0 else scratch
            u = _stage_units(n, b, stage, panels_n)
            for p in range(t * u // nt, (t + 1) * u // nt):
                _stage_unit(src, dst, stage, p, u)
            eng.barrier_wait()
            src = dst
            i += 1
        if post is not None:
            for p in units:
                _post_unit(out, post, p, panels_n)

    eng.run(participant)
    return out


# -------------------------------------------------------------- reducers
class PanelReducer:
    """Deterministic panel-partitioned reductions for the solver loop.

    Norms, Rayleigh quotients and residuals of the power iteration are
    computed as **per-panel partial sums combined in fixed panel order**
    (left to right), so a threaded solve produces byte-identical
    reductions on every run and for every thread count: each panel's
    partial is an ordinary NumPy reduction over a fixed slice, and the
    cross-panel combination is an explicit ordered loop.

    2-D inputs reduce along axis 0 (per column), matching the block
    power iteration's lock-step quantities.
    """

    def __init__(self, panels: int, *, engine: PanelEngine | None = None):
        if isinstance(panels, bool) or not isinstance(panels, (int, np.integer)):
            raise ValidationError(f"panels must be an integer, got {panels!r}")
        panels = int(panels)
        if panels < 1 or (panels & (panels - 1)) != 0:
            raise ValidationError(
                f"panels must be a positive power of two, got {panels}"
            )
        self.panels = panels
        self.engine = engine

    # ----------------------------------------------------------- plumbing
    def _bounds(self, n: int, p: int) -> tuple[int, int]:
        if n % self.panels != 0:
            raise ValidationError(
                f"array of {n} rows is not divisible into {self.panels} panels"
            )
        return panel_bounds(n, self.panels, p)

    def _partials(self, arrays: tuple[np.ndarray, ...], unit) -> list:
        """Per-panel partials ``unit(p, *panel_slices)`` — optionally
        computed by the engine's workers, always *combined* by the
        caller in panel order."""
        n = arrays[0].shape[0]
        slots: list = [None] * self.panels
        eng = self.engine

        def fill(p: int) -> None:
            r0, r1 = self._bounds(n, p)
            slots[p] = unit(*(a[r0:r1] for a in arrays))

        if eng is not None and eng.threads > 1:
            nt = eng.threads

            def participant(t: int) -> None:
                for p in range(t * self.panels // nt, (t + 1) * self.panels // nt):
                    fill(p)

            eng.run(participant)
        else:
            for p in range(self.panels):
                fill(p)
        return slots

    @staticmethod
    def _combine(slots: list):
        total = slots[0]
        for part in slots[1:]:
            total = total + part
        return total

    # ---------------------------------------------------------- reductions
    def abs_sum(self, x: np.ndarray):
        """``‖x‖₁`` (1-D) or per-column 1-norms (2-D, axis 0)."""
        x = np.asarray(x)
        if x.ndim == 1:
            slots = self._partials((x,), lambda a: float(np.abs(a).sum()))
            return float(self._combine(slots))
        slots = self._partials((x,), lambda a: np.abs(a).sum(axis=0))
        return self._combine(slots)

    def sq_sum(self, x: np.ndarray):
        """``‖x‖₂²`` (1-D) or per-column squared 2-norms (2-D)."""
        x = np.asarray(x)
        if x.ndim == 1:
            slots = self._partials((x,), lambda a: float(np.dot(a, a)))
            return float(self._combine(slots))
        slots = self._partials((x,), lambda a: (a * a).sum(axis=0))
        return self._combine(slots)

    def norm(self, x: np.ndarray):
        """``‖x‖₂`` (per column for 2-D input)."""
        s = self.sq_sum(x)
        return float(np.sqrt(s)) if np.isscalar(s) else np.sqrt(s)

    def diff_norm(self, x: np.ndarray, y: np.ndarray):
        """``‖x − y‖₂`` without materializing the full difference
        (per column for 2-D inputs) — the residual kernel."""
        x, y = np.asarray(x), np.asarray(y)
        if x.shape != y.shape:
            raise ValidationError(
                f"diff_norm operands disagree: {x.shape} vs {y.shape}"
            )
        if x.ndim == 1:
            slots = self._partials(
                (x, y), lambda a, b: float(((a - b) ** 2).sum())
            )
            return float(np.sqrt(self._combine(slots)))
        slots = self._partials((x, y), lambda a, b: ((a - b) ** 2).sum(axis=0))
        return np.sqrt(self._combine(slots))

    def dot(self, x: np.ndarray, y: np.ndarray):
        """``xᵀy`` (per column for 2-D inputs) — the Rayleigh-quotient
        numerator."""
        x, y = np.asarray(x), np.asarray(y)
        if x.shape != y.shape:
            raise ValidationError(f"dot operands disagree: {x.shape} vs {y.shape}")
        if x.ndim == 1:
            slots = self._partials((x, y), lambda a, b: float(np.dot(a, b)))
            return float(self._combine(slots))
        slots = self._partials((x, y), lambda a, b: (a * b).sum(axis=0))
        return self._combine(slots)

    def rayleigh(self, x: np.ndarray, y: np.ndarray):
        """Rayleigh quotient ``xᵀy / xᵀx`` (``y = W·x``), panel-ordered."""
        num = self.dot(x, y)
        den = self.sq_sum(x)
        return num / den

"""Fast Walsh–Hadamard transform (FWHT).

The eigenvector matrix of the uniform mutation matrix is the (scaled)
Hadamard matrix ``V(ν) = 2^{−ν/2} ⊗ᵢ [[1, 1], [1, −1]]`` (paper, Sec. 2),
so multiplying by ``V`` is the FWHT.  This powers the spectral
representation ``Q = V Λ V`` and the exact ``Θ(N log₂ N)``
shift-and-invert product ``(Q − μI)^{-1} v = V (Λ − μI)^{-1} V v``
(paper, Sec. 3).

We implement the *natural (Hadamard) order* transform — the one that
matches the Kronecker factorization used throughout the paper.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.transforms.butterfly import butterfly_transform
from repro.util.validation import check_power_of_two

__all__ = ["fwht", "fwht_inverse", "fwht_matrix"]

_H = np.array([[1.0, 1.0], [1.0, -1.0]])


def _nu_of(n: int) -> int:
    check_power_of_two(n, "len(v)")
    return int(n).bit_length() - 1


def _validate_in_place(v) -> np.ndarray:
    """Enforce the documented ``in_place`` contract instead of silently
    allocating: the input must already be a C-contiguous ``float64``
    ndarray (anything else cannot be transformed without a copy)."""
    if not isinstance(v, np.ndarray) or v.dtype != np.float64:
        raise ValidationError(
            "fwht(in_place=True) requires a float64 ndarray input "
            f"(got {type(v).__name__} of dtype "
            f"{getattr(v, 'dtype', 'n/a')}); pass in_place=False to transform a copy"
        )
    if not v.flags.c_contiguous:
        raise ValidationError(
            "fwht(in_place=True) requires a C-contiguous input (the "
            "transform cannot overwrite a strided view without "
            "allocating); pass in_place=False to transform a copy"
        )
    return v


def fwht(v: np.ndarray, *, ortho: bool = True, in_place: bool = False) -> np.ndarray:
    """Walsh–Hadamard transform of ``v`` (length a power of two).

    Parameters
    ----------
    v:
        Real input vector of length ``N = 2**ν``, or an ``(N, B)`` block
        whose ``B`` columns are transformed independently through the
        stage-fused batched kernel
        (:func:`repro.transforms.batched.batched_butterfly_transform`).
    ortho:
        If true (default), scale by ``2^{−ν/2}`` so the transform matrix
        is the symmetric orthogonal ``V(ν)`` of the paper and
        ``fwht(fwht(v)) == v``.  If false, the unnormalized ``H(ν) · v``
        is returned (each application multiplies norms by ``√N``).
    in_place:
        Overwrite ``v`` instead of allocating.  The input must be a
        C-contiguous ``float64`` array — anything else raises
        :class:`~repro.exceptions.ValidationError` (it could only be
        "transformed in place" by silently allocating a copy).

    Returns
    -------
    numpy.ndarray
        The transformed vector / block.
    """
    if in_place:
        v = _validate_in_place(v)
    v = np.asarray(v, dtype=np.float64)
    if v.ndim == 2:
        from repro.transforms.batched import batched_butterfly_transform

        nu = _nu_of(v.shape[0])
        if nu == 0:
            raise ValidationError("fwht needs at least 2 elements")
        out = batched_butterfly_transform(v, [_H] * nu)
        if ortho:
            out *= 2.0 ** (-nu / 2.0)
        if in_place:
            v[:] = out
            return v
        return out
    if v.ndim != 1:
        raise ValidationError(f"fwht expects a 1-D vector or (N, B) block, got shape {v.shape}")
    nu = _nu_of(len(v))
    if nu == 0:
        raise ValidationError("fwht needs at least 2 elements")
    out = butterfly_transform(v, [_H] * nu, in_place=in_place)
    if ortho:
        out *= 2.0 ** (-nu / 2.0)
    return out


def fwht_inverse(v: np.ndarray, *, ortho: bool = True, in_place: bool = False) -> np.ndarray:
    """Inverse Walsh–Hadamard transform.

    With ``ortho=True`` the transform is an involution, so this is the
    same as :func:`fwht`; with ``ortho=False`` the result is scaled by
    ``1/N`` (since ``H² = N·I``).
    """
    out = fwht(v, ortho=ortho, in_place=in_place)
    if not ortho:
        out /= len(out)
    return out


def fwht_matrix(nu: int, *, ortho: bool = True) -> np.ndarray:
    """Dense Hadamard matrix ``V(ν)`` (or unnormalized ``H(ν)``).

    ``(V(ν))_{i,j} = 2^{−ν/2} · (−1)^{(dH(i,0)+dH(j,0)−dH(i,j))/2}``
    per the paper; built here by the equivalent Kronecker recursion.
    Intended for validation at small ν.
    """
    if nu < 1 or nu > 14:
        raise ValidationError(f"fwht_matrix supports 1 <= nu <= 14, got {nu}")
    h = _H.copy()
    m = np.array([[1.0]])
    for _ in range(nu):
        m = np.kron(m, h)
    if ortho:
        m *= 2.0 ** (-nu / 2.0)
    return m

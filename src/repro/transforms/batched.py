"""Stage-fused, cache-blocked butterfly kernels for multi-vector blocks.

The scalar butterfly of :mod:`repro.transforms.butterfly` streams seven
elementwise passes over ``N/2`` elements per 2×2 stage.  When ``B``
right-hand sides share the same Kronecker factors (the batched sweeps of
the service layer; the ``B`` columns of a Walsh-spectrum block), the same
mathematics admits a far better memory schedule:

* **block layout** — vectors are the *columns* of an ``(N, B)`` C-order
  block, so the two butterfly partners of a stage with span ``h`` are
  contiguous runs of ``h·B`` doubles.  Even the worst stage (``h = 1``)
  touches memory in ``B``-element cache lines instead of stride-2
  scalars: the batch dimension is the cache block.
* **stage fusion** — each stage is one fused ``matmul``/``einsum`` call
  (a single read stream and a single write stream, ≤ 3 passes counting a
  folded diagonal scale) instead of the scalar path's 7 passes.
* **radix-4 fusion** — two adjacent 2×2 stages acting on bits ``s`` and
  ``s+1`` commute and combine into one 4×4 factor
  ``kron(M_{s+1}, M_s)`` applied to groups of 4, halving the number of
  sweeps over the block (``⌈ν/2⌉`` instead of ``ν``).
* **diagonal folding** — the ``F`` (and ``F^{1/2}``) scalings of the
  eigenproblem forms (Eqs. 3–5) fold into the sweep schedule: the
  pre-scale becomes the leading write of the ping-pong chain (replacing
  the first sweep's read of the caller's block) and the post-scale an
  in-place epilogue on the output block, so neither needs a buffer of
  its own.
* **one scratch block** — the whole transform ping-pongs between the
  output block and a single reusable ``(N, B)`` scratch buffer.

Stages acting on distinct bits commute (see
:mod:`repro.transforms.butterfly`), so every fusion above is *exact* up
to floating-point rounding; the differential-verification grids compare
this kernel against the scalar 7-pass path on every spec.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "FusedStage",
    "fused_stage_plan",
    "fused_stage_count",
    "batched_butterfly_transform",
]


def _check_2x2(m: np.ndarray, what: str = "factor") -> np.ndarray:
    arr = np.asarray(m, dtype=np.float64)
    if arr.shape != (2, 2):
        raise ValidationError(f"{what} must be a 2x2 matrix, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class FusedStage:
    """One fused butterfly sweep over the block.

    Attributes
    ----------
    span:
        Pair distance of the *lowest* bit this sweep mixes (``2**s``).
    radix:
        2 for a plain stage, 4 for two radix-2 stages fused into one
        4×4 factor.
    matrix:
        The ``(radix, radix)`` mixing matrix; for ``radix == 4`` it is
        ``kron(M_{s+1}, M_s)`` (bit ``s+1`` is the high bit of the
        combined index — exactly the C-order reshape convention).
    """

    span: int
    radix: int
    matrix: np.ndarray


def fused_stage_count(nu: int, *, radix4: bool = True) -> int:
    """Number of fused sweeps over the block: ``⌈ν/2⌉`` with radix-4
    fusion, ``ν`` without."""
    if nu < 1:
        raise ValidationError(f"nu must be >= 1, got {nu}")
    return (nu + 1) // 2 if radix4 else nu


def fused_stage_plan(
    factors: Sequence[np.ndarray],
    *,
    variant: str = "eq9",
    radix4: bool = True,
) -> list[FusedStage]:
    """Build the fused sweep schedule for ``factors``.

    ``variant="eq9"`` traverses bits in ascending span order (Eq. 9 /
    Algorithm 1); ``variant="eq10"`` in descending order (Eq. 10).  With
    ``radix4=True``, bits adjacent in the traversal are paired into 4×4
    factors whenever their spans are adjacent powers of two.
    """
    if variant not in ("eq9", "eq10"):
        raise ValidationError(f"variant must be 'eq9' or 'eq10', got {variant!r}")
    nu = len(factors)
    if nu == 0:
        raise ValidationError("at least one factor is required")
    mats = [_check_2x2(m, f"factors[{i}]") for i, m in enumerate(factors)]
    order = list(range(nu)) if variant == "eq9" else list(range(nu - 1, -1, -1))
    plan: list[FusedStage] = []
    i = 0
    while i < len(order):
        if radix4 and i + 1 < len(order):
            a, b = order[i], order[i + 1]
            lo, hi = (a, b) if a < b else (b, a)
            if hi == lo + 1:
                plan.append(
                    FusedStage(span=1 << lo, radix=4, matrix=np.kron(mats[hi], mats[lo]))
                )
                i += 2
                continue
        s = order[i]
        plan.append(FusedStage(span=1 << s, radix=2, matrix=mats[s]))
        i += 1
    return plan


def _check_block(block: np.ndarray, n: int | None = None, name: str = "block") -> np.ndarray:
    arr = np.asarray(block)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D (N, B), got shape {arr.shape}")
    if n is not None and arr.shape[0] != n:
        raise ValidationError(f"{name} must have {n} rows, got {arr.shape[0]}")
    if not np.issubdtype(arr.dtype, np.number) or np.issubdtype(arr.dtype, np.complexfloating):
        raise ValidationError(f"{name} must be a real numeric block, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=np.float64)


def _check_scale(scale, n: int, b: int, name: str) -> np.ndarray | None:
    if scale is None:
        return None
    arr = np.ascontiguousarray(scale, dtype=np.float64)
    if arr.shape == (n,):
        return arr
    if arr.shape == (n, b):
        return arr
    raise ValidationError(
        f"{name} must have shape ({n},) or ({n}, {b}), got {arr.shape}"
    )


def _apply_fused(src: np.ndarray, dst: np.ndarray, stage: FusedStage) -> None:
    """One fused sweep ``dst = M · src`` on every butterfly group.

    The hot path of the kernel: a single strided ``matmul`` — one read
    stream and one write stream over the whole block.  The inner
    ``span·B`` axis is contiguous, so even the worst stage (span 1)
    moves whole cache lines (the batch dimension is the cache block).
    """
    n, b = src.shape
    r, h = stage.radix, stage.span
    g = n // (r * h)
    z = h * b
    np.matmul(stage.matrix, src.reshape(g, r, z), out=dst.reshape(g, r, z))


def _scale_into(dst: np.ndarray, src: np.ndarray, scale: np.ndarray) -> None:
    """``dst = scale ∘ src`` (column-broadcast for 1-D scales)."""
    np.multiply(src, scale[:, None] if scale.ndim == 1 else scale, out=dst)


def batched_butterfly_transform(
    block: np.ndarray,
    factors: Sequence[np.ndarray],
    *,
    variant: str = "eq9",
    pre_scale: np.ndarray | None = None,
    post_scale: np.ndarray | None = None,
    radix4: bool = True,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the full ν-stage butterfly to every column of ``block``.

    Parameters
    ----------
    block:
        ``(N, B)`` array; column ``j`` is an independent input vector of
        length ``N = 2**ν``.  Never modified.
    factors:
        One 2×2 matrix per bit (``factors[s]`` acts on bit ``s`` — same
        convention as :func:`repro.transforms.butterfly.butterfly_transform`).
    variant:
        Stage traversal order, ``"eq9"`` (ascending) or ``"eq10"``
        (descending).  Both give identical results up to rounding.
    pre_scale, post_scale:
        Optional diagonal scalings folded into the first / last sweep:
        shape ``(N,)`` (shared by all columns) or ``(N, B)`` (per
        column).  ``out = post ∘ (M_ν ⊗ … ⊗ M_1) · (pre ∘ block)``.
    radix4:
        Fuse adjacent stages into 4×4 factors (default).
    out:
        Optional ``(N, B)`` float64 C-contiguous output block.  Must not
        alias ``block``.
    scratch:
        Optional ``(N, B)`` float64 C-contiguous scratch block (the one
        auxiliary buffer the ping-pong schedule needs).  Must not alias
        ``block`` or ``out``.

    Returns
    -------
    numpy.ndarray
        The transformed ``(N, B)`` block (``out`` if given).
    """
    work_in = _check_block(block, None, "block")
    n, b = work_in.shape
    nu = len(factors)
    if nu == 0:
        raise ValidationError("at least one factor is required")
    if n != (1 << nu):
        raise ValidationError(f"block must have 2**{nu} = {1 << nu} rows, got {n}")
    pre = _check_scale(pre_scale, n, b, "pre_scale")
    post = _check_scale(post_scale, n, b, "post_scale")
    plan = fused_stage_plan(factors, variant=variant, radix4=radix4)
    # The pre-scale is folded into the schedule as the leading write of
    # the ping-pong chain (it replaces the first sweep's input read of
    # the caller's block); the post-scale is an in-place epilogue on the
    # output block (no extra buffer traffic).
    steps = (1 if pre is not None else 0) + len(plan)

    def _buffer(buf: np.ndarray | None, name: str) -> np.ndarray:
        if buf is None:
            return np.empty((n, b), dtype=np.float64)
        if buf.shape != (n, b) or buf.dtype != np.float64 or not buf.flags.c_contiguous:
            raise ValidationError(
                f"{name} must be a C-contiguous float64 array of shape ({n}, {b})"
            )
        if np.shares_memory(buf, block):
            raise ValidationError(f"{name} must not alias the input block")
        return buf

    out = _buffer(out, "out")
    if steps > 1:
        scratch = _buffer(scratch, "scratch")
        if scratch is out or np.shares_memory(scratch, out):
            raise ValidationError("scratch must not alias out")
    # Ping-pong so the last step lands in ``out``: step ``i`` writes
    # ``out`` when (steps-1-i) is even, ``scratch`` otherwise.
    src = work_in
    i = 0
    if pre is not None:
        dst = out if (steps - 1 - i) % 2 == 0 else scratch
        _scale_into(dst, src, pre)
        src = dst
        i += 1
    for stage in plan:
        dst = out if (steps - 1 - i) % 2 == 0 else scratch
        _apply_fused(src, dst, stage)
        src = dst
        i += 1
    if post is not None:
        out *= post[:, None] if post.ndim == 1 else post
    return out

"""Fast structured transforms.

The paper's central observation is that the mutation matrix ``Q`` has a
Kronecker-product factorization (Eq. 7), so multiplying by it is an
FFT/FWHT-like butterfly transform with ``Θ(N log₂ N)`` cost.  This package
holds the transform machinery itself, independent of the quasispecies
semantics:

* :mod:`repro.transforms.butterfly` — in-place 2×2-stage butterfly engine
  (vectorized NumPy plus a literal scalar transcription of the paper's
  Algorithm 1 for validation),
* :mod:`repro.transforms.fwht` — the fast Walsh–Hadamard transform used to
  diagonalize ``Q``,
* :mod:`repro.transforms.kronecker` — matvec with an arbitrary Kronecker
  product of small dense factors (Eq. 11 generality),
* :mod:`repro.transforms.batched` — the stage-fused, cache-blocked
  multi-vector butterfly kernel (radix-4 stage fusion, folded diagonal
  scalings, one scratch block) that backs both the scalar
  ``butterfly_transform``/``fwht`` paths and the batched
  ``matmat`` operators.
"""

from repro.transforms.butterfly import (
    apply_stage,
    butterfly_transform,
    butterfly_transform_reference,
)
from repro.transforms.batched import (
    FusedStage,
    fused_stage_plan,
    fused_stage_count,
    batched_butterfly_transform,
)
from repro.transforms.parallel import (
    PanelEngine,
    PanelReducer,
    parallel_butterfly_transform,
    resolve_threads,
    resolve_panels,
    max_panels,
    get_engine,
    shutdown_engines,
)
from repro.transforms.fwht import fwht, fwht_inverse, fwht_matrix
from repro.transforms.kronecker import kron_matvec, kron_vector, kron_diagonal

__all__ = [
    "apply_stage",
    "butterfly_transform",
    "butterfly_transform_reference",
    "FusedStage",
    "fused_stage_plan",
    "fused_stage_count",
    "batched_butterfly_transform",
    "PanelEngine",
    "PanelReducer",
    "parallel_butterfly_transform",
    "resolve_threads",
    "resolve_panels",
    "max_panels",
    "get_engine",
    "shutdown_engines",
    "fwht",
    "fwht_inverse",
    "fwht_matrix",
    "kron_matvec",
    "kron_vector",
    "kron_diagonal",
]

"""In-place butterfly transforms with per-stage 2×2 factors.

A Kronecker product of ν 2×2 matrices applied to a vector of length
``N = 2**ν`` factors into ν *stages*.  The stage with span ``h = 2**s``
mixes every pair of elements whose indices differ exactly in bit ``s``:

    v[j]     ←  m00 · v[j]  +  m01 · v[j + h]
    v[j + h] ←  m10 · v[j]  +  m11 · v[j + h]

which is exactly the inner loop of the paper's Algorithm 1 (there with
``m = [[1−p, p], [p, 1−p]]``).  Stages act on distinct bits and therefore
commute; we run them in ascending span order like the paper.

Bit/factor convention (documented in DESIGN.md): in the Kronecker product
``M = M_1 ⊗ M_2 ⊗ … ⊗ M_ν`` of Eq. (7)/(8), factor ``M_1`` corresponds to
the *most significant* bit of the sequence index.  This module is indexed
by **bit** (LSB = bit 0 = site 0), so ``factors[s]`` is the 2×2 matrix for
bit ``s``, i.e. Kronecker factor number ``ν − s``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.util.validation import check_power_of_two, check_vector

__all__ = ["apply_stage", "butterfly_transform", "butterfly_transform_reference"]


def _check_2x2(m: np.ndarray, what: str = "factor") -> np.ndarray:
    arr = np.asarray(m, dtype=np.float64)
    if arr.shape != (2, 2):
        raise ValidationError(f"{what} must be a 2x2 matrix, got shape {arr.shape}")
    return arr


def apply_stage(v: np.ndarray, span: int, m: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Apply one butterfly stage of span ``span`` with 2×2 matrix ``m``.

    Parameters
    ----------
    v:
        Input vector, length a power of two, ``len(v) >= 2 * span``.
    span:
        Pair distance ``h`` (a power of two).  Elements ``j`` and
        ``j + span`` are mixed whenever bit ``log2(span)`` of ``j`` is 0.
    m:
        The 2×2 mixing matrix applied as a matvec to each pair
        ``(v[j], v[j + span])``.
    out:
        Optional output vector.  May alias ``v`` (the update is computed
        through temporaries per pair, as in Algorithm 1 lines 4–7).

    Returns
    -------
    numpy.ndarray
        The transformed vector (``out`` if given, else a new array).

    Notes
    -----
    Vectorization: viewing ``v`` as an array of shape
    ``(N / (2·span), 2, span)`` puts the two pair members on axis 1, so
    the whole stage is four scaled adds on contiguous blocks — the NumPy
    equivalent of the ``Θ(N)`` stage cost.
    """
    n = len(v)
    check_power_of_two(n, "len(v)")
    span = check_power_of_two(span, "span")
    if 2 * span > n:
        raise ValidationError(f"span {span} too large for vector of length {n}")
    m = _check_2x2(m)
    v = np.ascontiguousarray(v, dtype=np.float64)
    if out is None:
        out = np.empty_like(v)
    elif out.shape != v.shape:
        raise ValidationError("out must have the same shape as v")

    src = v.reshape(-1, 2, span)
    dst = out.reshape(-1, 2, span)
    lo = src[:, 0, :]
    hi = src[:, 1, :]
    # Temporaries are required when out aliases v (in-situ operation).
    new_lo = m[0, 0] * lo + m[0, 1] * hi
    new_hi = m[1, 0] * lo + m[1, 1] * hi
    dst[:, 0, :] = new_lo
    dst[:, 1, :] = new_hi
    return out


def butterfly_transform(
    v: np.ndarray,
    factors: Sequence[np.ndarray],
    *,
    in_place: bool = False,
) -> np.ndarray:
    """Apply the full ν-stage butterfly: ``(M_{ν} ⊗ … ⊗ M_1) · v``.

    ``factors[s]`` is the 2×2 matrix acting on bit ``s`` (see module
    docstring for the Kronecker-order convention).  Runtime is
    ``Θ(N log₂ N)``.  With ``in_place=True`` the (validated) input array
    is overwritten and returned.

    The transform is executed by the stage-fused batched kernel
    (:func:`repro.transforms.batched.batched_butterfly_transform`) on a
    single-column block, so the scalar path, the multi-vector path, the
    FWHT and the spectral shift-invert products all share one engine.
    """
    from repro.transforms.batched import batched_butterfly_transform

    nu = len(factors)
    if nu == 0:
        raise ValidationError("at least one factor is required")
    n = 1 << nu
    v = check_vector(v, n, "v")
    out = batched_butterfly_transform(v.reshape(n, 1), factors).reshape(n)
    if in_place:
        v[:] = out
        return v
    return out


def butterfly_transform_reference(v: np.ndarray, factors: Sequence[np.ndarray]) -> np.ndarray:
    """Literal scalar transcription of the paper's Algorithm 1.

    Same contract as :func:`butterfly_transform` but implemented with the
    exact triple loop of the paper (generalized from ``(1−p, p)`` weights
    to an arbitrary 2×2 matrix per stage).  Quadratically slower in
    Python; exists purely as an executable specification for tests.
    """
    nu = len(factors)
    if nu == 0:
        raise ValidationError("at least one factor is required")
    n = 1 << nu
    v = check_vector(v, n, "v").copy()
    i = 1
    stage = 0
    while i <= n // 2:  # Algorithm 1 line 1: for i ← 1 to N/2 by 2·i
        m = _check_2x2(factors[stage])
        for j in range(0, n, 2 * i):  # line 2
            for k in range(i):  # line 3
                t1 = v[j + k]  # line 4
                t2 = v[j + k + i]  # line 5
                v[j + k] = m[0, 0] * t1 + m[0, 1] * t2  # line 6
                v[j + k + i] = m[1, 0] * t1 + m[1, 1] * t2  # line 7
        i *= 2
        stage += 1
    return v

"""Shifted operator ``A − μI`` for convergence acceleration (Sec. 3).

The power iteration's rate is ``λ₁/λ₀``; shifting improves it to
``(λ₁−μ)/(λ₀−μ)`` provided ``λ₀−μ`` stays the dominant eigenvalue.  The
paper derives the always-safe choice ``μ = (1−2p)^ν · f_min`` from
``‖W⁻¹‖₁ ≤ ‖F⁻¹‖₁·‖Q⁻¹‖₁``: it is a lower bound on λ_min, so subtracting
it can never flip the dominance order.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.uniform import UniformMutation
from repro.operators.base import ImplicitOperator, OperatorCosts

__all__ = ["ShiftedOperator", "conservative_shift"]


def conservative_shift(mutation: UniformMutation, landscape: FitnessLandscape) -> float:
    """The paper's provably safe shift ``μ = (1−2p)^ν · f_min``.

    Derived from ``λ_min(W) >= (1−2p)^ν f_min`` (Sec. 3); conservative
    but guaranteed to preserve convergence to the Perron vector.
    """
    if mutation.nu != landscape.nu:
        raise ValidationError("mutation and landscape chain lengths disagree")
    return (1.0 - 2.0 * mutation.p) ** mutation.nu * landscape.fmin


class ShiftedOperator(ImplicitOperator):
    """Wrap any operator as ``A − μI`` (one extra axpy per product)."""

    def __init__(self, base: ImplicitOperator, mu: float):
        self.base = base
        self.mu = float(mu)
        self.n = base.n

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = self.check(v)
        out = self.base.matvec(v)
        if self.mu != 0.0:
            out -= self.mu * v
        return out

    @property
    def is_symmetric(self) -> bool:
        return self.base.is_symmetric

    @property
    def panel_reducer(self):
        """Forward the wrapped operator's deterministic panel reducer (if
        any) so threaded solves keep panel-ordered reductions through the
        shift wrapper."""
        return getattr(self.base, "panel_reducer", None)

    def costs(self) -> OperatorCosts:
        inner = self.base.costs()
        n = float(self.n)
        return OperatorCosts(
            flops=inner.flops + 2.0 * n,
            bytes_moved=inner.bytes_moved + 8.0 * 3.0 * n,
            storage_bytes=inner.storage_bytes,
        )

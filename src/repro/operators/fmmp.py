"""``Fmmp`` — the paper's fast mutation matrix product (Sec. 2).

Exact ``W·v`` in ``Θ(N log₂ N)`` with no matrix storage at all: the
Kronecker factorization of ``Q`` turns the product into a ν-stage
butterfly (Eq. 9 / Eq. 10, Algorithm 1).  Works unchanged for the
generalized mutation models of Sec. 2.2 — per-site factors run through
the same butterfly, grouped factors through the multilinear Kronecker
contraction.

Two stage orders are provided, mirroring the two recursions:

* ``variant="eq9"`` — combine after recursing (Eq. 9): ascending spans
  ``1, 2, …, N/2``, exactly Algorithm 1;
* ``variant="eq10"`` — split before recursing (Eq. 10): descending spans.

For a fixed bit↔factor assignment the stages commute, so both variants
produce identical results (asserted in the tests) — the choice only
matters for memory-access order, which is why the paper mentions both.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.base import MutationModel
from repro.mutation.grouped import GroupedMutation
from repro.mutation.persite import PerSiteMutation
from repro.mutation.uniform import UniformMutation
from repro.operators.base import FormMixin, ImplicitOperator, OperatorCosts
from repro.transforms.kronecker import kron_matvec
from repro.util.scratch import ScratchPool

__all__ = ["Fmmp"]

_VARIANTS = ("eq9", "eq10")


class Fmmp(ImplicitOperator, FormMixin):
    """Fast mutation matrix product operator for ``W`` (Eqs. 3–5 forms).

    Parameters
    ----------
    mutation:
        Any :class:`~repro.mutation.base.MutationModel`; butterfly path
        for 2×2-factored models, Kronecker contraction for grouped ones.
    landscape:
        The fitness landscape.
    form:
        ``right``/``symmetric``/``left``.
    variant:
        ``"eq9"`` (ascending spans, Algorithm 1) or ``"eq10"``
        (descending spans).
    threads:
        Panel-engine thread count (``None`` reads ``REPRO_NUM_THREADS``,
        default 1).  With ``threads > 1`` (or an explicit ``panels``)
        2×2-factored models route :meth:`matvec` through the
        panel-parallel stage-fused kernel
        (:func:`repro.transforms.parallel.parallel_butterfly_transform`);
        the output is **bit-identical** for every ``(threads, panels)``
        combination, including the ``panels=1`` serial fused engine (it
        differs from the legacy 7-pass scalar path only at rounding
        level, which the verification grids bound at 1e−12).  Grouped
        models have no butterfly to parallelize and silently stay on
        their serial contraction.
    panels:
        Panel count ``R`` (power of two) for the parallel kernel;
        defaults to the roofline model's
        :func:`repro.perf.parallel.auto_panels` pick for
        ``(ν, 1, threads)``.

    Examples
    --------
    >>> from repro.mutation import UniformMutation
    >>> from repro.landscapes import SinglePeakLandscape
    >>> op = Fmmp(UniformMutation(10, 0.01), SinglePeakLandscape(10))
    >>> y = op.matvec(op.landscape.start_vector())
    >>> y.shape
    (1024,)
    """

    def __init__(
        self,
        mutation: MutationModel,
        landscape: FitnessLandscape,
        form: str = "right",
        variant: str = "eq9",
        *,
        threads: int | None = None,
        panels: int | None = None,
    ):
        if mutation.nu != landscape.nu:
            raise ValidationError(
                f"mutation (nu={mutation.nu}) and landscape (nu={landscape.nu}) disagree"
            )
        if variant not in _VARIANTS:
            raise ValidationError(f"variant must be one of {_VARIANTS}, got {variant!r}")
        self.mutation = mutation
        self.variant = variant
        self.n = mutation.n
        self._init_form(landscape, form)

        # Lazy import: repro.transforms.parallel reaches into the
        # distributed package (shared stage-split math), which imports
        # the solvers, which import this module.
        from repro.transforms.parallel import resolve_threads

        self.threads = resolve_threads(threads)
        parallel_requested = self.threads > 1 or panels is not None
        self.panels = 1
        self.panel_reducer = None
        self._engine = None

        if isinstance(mutation, (UniformMutation, PerSiteMutation)):
            self._bit_factors = mutation.factors_per_bit()
            self._blocks = None
            # Scratch for the allocation-free sweeps.  Acquired per call
            # from a bounded keyed pool so concurrent workers can share
            # one operator instance; the parallel engine's (N, B) blocks
            # ride the same pool.
            self._scratch_pool = ScratchPool()
            if parallel_requested:
                from repro.perf.parallel import auto_panels
                from repro.transforms.parallel import (
                    PanelReducer,
                    get_engine,
                    resolve_panels,
                )

                if panels is None:
                    self.panels = auto_panels(
                        mutation.nu, 1, threads=self.threads
                    )
                else:
                    self.panels = resolve_panels(
                        panels, mutation.nu, threads=self.threads
                    )
                self._engine = get_engine(self.threads)
                self.panel_reducer = PanelReducer(self.panels, engine=self._engine)
        elif isinstance(mutation, GroupedMutation):
            self._bit_factors = None
            self._blocks = mutation.blocks()
        else:  # pragma: no cover - future models fall back to .apply
            self._bit_factors = None
            self._blocks = None
        self._parallel = parallel_requested and self._bit_factors is not None

    # ------------------------------------------------------------- product
    def _q_fast(self, w: np.ndarray) -> np.ndarray:
        """In-situ butterfly (or Kronecker contraction) for ``Q·w``.

        ``w`` is always a fresh temporary created by ``_apply_form``
        (the diagonal scaling copies), so in-place stages are safe.
        """
        if self._bit_factors is not None:
            nu = self.mutation.nu
            stages = range(nu) if self.variant == "eq9" else range(nu - 1, -1, -1)
            half = (self.n // 2,)
            s1, s2 = self._scratch_pool.acquire(half), self._scratch_pool.acquire(half)
            try:
                for s in stages:
                    span = 1 << s
                    m = self._bit_factors[s]
                    src = w.reshape(-1, 2, span)
                    lo = src[:, 0, :]
                    hi = src[:, 1, :]
                    # Allocation-free butterfly: 7 streaming passes over N/2
                    # elements via the reusable scratch halves (the in-situ
                    # property of Eq. 9/10 — no Θ(N) temporaries per stage).
                    a = s1.reshape(lo.shape)
                    b = s2.reshape(lo.shape)
                    np.multiply(hi, m[1, 1], out=b)
                    np.multiply(lo, m[1, 0], out=a)
                    a += b  # new_hi
                    np.multiply(hi, m[0, 1], out=b)
                    lo *= m[0, 0]
                    lo += b  # new_lo, written in place
                    hi[:] = a
            finally:
                self._scratch_pool.release(s1, s2)
            return w
        if self._blocks is not None:
            return kron_matvec(self._blocks, w)
        return self.mutation.apply(w)

    def _matvec_parallel(self, v: np.ndarray) -> np.ndarray:
        """Panel-parallel fused product (``threads``/``panels`` engaged).

        Bit-identical to the serial stage-fused kernel for every panel
        and thread count — the diagonal ``F``/``F^{1/2}`` scalings fold
        into the sweep schedule exactly as in
        :meth:`repro.operators.batched.BatchedFmmp.matmat`.
        """
        from repro.transforms.parallel import parallel_butterfly_transform

        if self.form == "right":
            pre, post = self._f, None
        elif self.form == "symmetric":
            pre, post = self._sqrt_f, self._sqrt_f
        else:  # left
            pre, post = None, self._f
        shape = (self.n, 1)
        scratch = self._scratch_pool.acquire(shape)
        try:
            out = parallel_butterfly_transform(
                v.reshape(shape),
                self._bit_factors,
                variant=self.variant,
                pre_scale=pre,
                post_scale=post,
                panels=self.panels,
                engine=self._engine,
                scratch=scratch,
            )
        finally:
            self._scratch_pool.release(scratch)
        return out.reshape(self.n)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = self.check(v)
        if self._parallel:
            return self._matvec_parallel(v)
        if self.form == "left":
            # _apply_form would hand the original v to q_apply; the
            # in-situ butterfly must not clobber the caller's vector.
            return self._f * self._q_fast(v.copy())
        return self._apply_form(v, self._q_fast)

    @property
    def is_symmetric(self) -> bool:
        return self.form == "symmetric" and self.mutation.is_symmetric

    def costs(self, *, batch: int = 1) -> OperatorCosts:
        """Per stage: N/2 butterflies × (4 mem ops + 6 flops), ν stages,
        plus the diagonal scaling — the paper's ``Θ(N log₂ N)``.

        With ``batch > 1`` the costs describe the stage-fused batched
        kernel (:mod:`repro.transforms.batched`) applied to a
        ``(N, batch)`` block: ``⌈ν/2⌉`` radix-4 sweeps with the diagonal
        scalings folded into the ping-pong schedule, modeled by
        :func:`repro.perf.batched.batched_fmmp_costs`.
        """
        if batch < 1:
            raise ValidationError(f"batch must be >= 1, got {batch}")
        n = float(self.n)
        nu = float(self.mutation.nu)
        scale_passes = 2.0 if self.form == "symmetric" else 1.0
        if batch > 1 and self._blocks is None:
            # Lazy import: repro.perf pulls in modules that import the
            # operators package.
            from repro.perf.batched import batched_fmmp_costs

            return batched_fmmp_costs(self.mutation.nu, batch, form=self.form)
        if self._blocks is not None:
            # Σ per-group contraction cost: N * 2^{g_i} mults/adds each.
            contraction = sum(2.0 * n * (1 << b) for b in self.mutation.group_sizes)
            flops = contraction + scale_passes * n
            bytes_moved = 8.0 * (2.0 * n * len(self._blocks) + 3.0 * scale_passes * n)
            flops *= batch
            bytes_moved *= batch
        else:
            flops = 6.0 * (n / 2.0) * nu + scale_passes * n
            bytes_moved = 8.0 * (4.0 * (n / 2.0) * nu + 3.0 * scale_passes * n)
        return OperatorCosts(
            flops=flops, bytes_moved=bytes_moved, storage_bytes=8.0 * n, batch=batch
        )

"""``Fmmp`` — the paper's fast mutation matrix product (Sec. 2).

Exact ``W·v`` in ``Θ(N log₂ N)`` with no matrix storage at all: the
Kronecker factorization of ``Q`` turns the product into a ν-stage
butterfly (Eq. 9 / Eq. 10, Algorithm 1).  Works unchanged for the
generalized mutation models of Sec. 2.2 — per-site factors run through
the same butterfly, grouped factors through the multilinear Kronecker
contraction.

Two stage orders are provided, mirroring the two recursions:

* ``variant="eq9"`` — combine after recursing (Eq. 9): ascending spans
  ``1, 2, …, N/2``, exactly Algorithm 1;
* ``variant="eq10"`` — split before recursing (Eq. 10): descending spans.

For a fixed bit↔factor assignment the stages commute, so both variants
produce identical results (asserted in the tests) — the choice only
matters for memory-access order, which is why the paper mentions both.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.base import MutationModel
from repro.mutation.grouped import GroupedMutation
from repro.mutation.persite import PerSiteMutation
from repro.mutation.uniform import UniformMutation
from repro.operators.base import FormMixin, ImplicitOperator, OperatorCosts
from repro.transforms.kronecker import kron_matvec

__all__ = ["Fmmp"]

_VARIANTS = ("eq9", "eq10")


class _ScratchPool:
    """Reentrant pool of scratch-half pairs for the in-situ butterfly.

    ``Fmmp`` used to keep a single ``(s1, s2)`` scratch tuple as operator
    state, which made concurrent :meth:`Fmmp.matvec` calls on a shared
    instance race on the same buffers (the service worker pool shares one
    operator per job group).  The pool hands each in-flight product its
    own pair — lock-protected free list, allocate on miss — so calls are
    reentrant while the steady-state single-threaded case still reuses
    one allocation.
    """

    def __init__(self, half: int, max_idle: int = 4):
        self._half = half
        self._max_idle = max_idle
        self._lock = threading.Lock()
        self._free: deque[tuple[np.ndarray, np.ndarray]] = deque()

    def acquire(self) -> tuple[np.ndarray, np.ndarray]:
        with self._lock:
            if self._free:
                return self._free.popleft()
        return (np.empty(self._half), np.empty(self._half))

    def release(self, pair: tuple[np.ndarray, np.ndarray]) -> None:
        with self._lock:
            if len(self._free) < self._max_idle:
                self._free.append(pair)

    @property
    def idle(self) -> int:
        with self._lock:
            return len(self._free)


class Fmmp(ImplicitOperator, FormMixin):
    """Fast mutation matrix product operator for ``W`` (Eqs. 3–5 forms).

    Parameters
    ----------
    mutation:
        Any :class:`~repro.mutation.base.MutationModel`; butterfly path
        for 2×2-factored models, Kronecker contraction for grouped ones.
    landscape:
        The fitness landscape.
    form:
        ``right``/``symmetric``/``left``.
    variant:
        ``"eq9"`` (ascending spans, Algorithm 1) or ``"eq10"``
        (descending spans).

    Examples
    --------
    >>> from repro.mutation import UniformMutation
    >>> from repro.landscapes import SinglePeakLandscape
    >>> op = Fmmp(UniformMutation(10, 0.01), SinglePeakLandscape(10))
    >>> y = op.matvec(op.landscape.start_vector())
    >>> y.shape
    (1024,)
    """

    def __init__(
        self,
        mutation: MutationModel,
        landscape: FitnessLandscape,
        form: str = "right",
        variant: str = "eq9",
    ):
        if mutation.nu != landscape.nu:
            raise ValidationError(
                f"mutation (nu={mutation.nu}) and landscape (nu={landscape.nu}) disagree"
            )
        if variant not in _VARIANTS:
            raise ValidationError(f"variant must be one of {_VARIANTS}, got {variant!r}")
        self.mutation = mutation
        self.variant = variant
        self.n = mutation.n
        self._init_form(landscape, form)

        if isinstance(mutation, (UniformMutation, PerSiteMutation)):
            self._bit_factors = mutation.factors_per_bit()
            self._blocks = None
            # Scratch for the allocation-free stage sweep (half the
            # vector each).  Acquired per call from a reentrant pool so
            # concurrent workers can share one operator instance.
            self._scratch_pool = _ScratchPool(self.n // 2)
        elif isinstance(mutation, GroupedMutation):
            self._bit_factors = None
            self._blocks = mutation.blocks()
        else:  # pragma: no cover - future models fall back to .apply
            self._bit_factors = None
            self._blocks = None

    # ------------------------------------------------------------- product
    def _q_fast(self, w: np.ndarray) -> np.ndarray:
        """In-situ butterfly (or Kronecker contraction) for ``Q·w``.

        ``w`` is always a fresh temporary created by ``_apply_form``
        (the diagonal scaling copies), so in-place stages are safe.
        """
        if self._bit_factors is not None:
            nu = self.mutation.nu
            stages = range(nu) if self.variant == "eq9" else range(nu - 1, -1, -1)
            pair = self._scratch_pool.acquire()
            try:
                s1, s2 = pair
                for s in stages:
                    span = 1 << s
                    m = self._bit_factors[s]
                    src = w.reshape(-1, 2, span)
                    lo = src[:, 0, :]
                    hi = src[:, 1, :]
                    # Allocation-free butterfly: 7 streaming passes over N/2
                    # elements via the reusable scratch halves (the in-situ
                    # property of Eq. 9/10 — no Θ(N) temporaries per stage).
                    a = s1.reshape(lo.shape)
                    b = s2.reshape(lo.shape)
                    np.multiply(hi, m[1, 1], out=b)
                    np.multiply(lo, m[1, 0], out=a)
                    a += b  # new_hi
                    np.multiply(hi, m[0, 1], out=b)
                    lo *= m[0, 0]
                    lo += b  # new_lo, written in place
                    hi[:] = a
            finally:
                self._scratch_pool.release(pair)
            return w
        if self._blocks is not None:
            return kron_matvec(self._blocks, w)
        return self.mutation.apply(w)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = self.check(v)
        if self.form == "left":
            # _apply_form would hand the original v to q_apply; the
            # in-situ butterfly must not clobber the caller's vector.
            return self._f * self._q_fast(v.copy())
        return self._apply_form(v, self._q_fast)

    @property
    def is_symmetric(self) -> bool:
        return self.form == "symmetric" and self.mutation.is_symmetric

    def costs(self, *, batch: int = 1) -> OperatorCosts:
        """Per stage: N/2 butterflies × (4 mem ops + 6 flops), ν stages,
        plus the diagonal scaling — the paper's ``Θ(N log₂ N)``.

        With ``batch > 1`` the costs describe the stage-fused batched
        kernel (:mod:`repro.transforms.batched`) applied to a
        ``(N, batch)`` block: ``⌈ν/2⌉`` radix-4 sweeps with the diagonal
        scalings folded into the ping-pong schedule, modeled by
        :func:`repro.perf.batched.batched_fmmp_costs`.
        """
        if batch < 1:
            raise ValidationError(f"batch must be >= 1, got {batch}")
        n = float(self.n)
        nu = float(self.mutation.nu)
        scale_passes = 2.0 if self.form == "symmetric" else 1.0
        if batch > 1 and self._blocks is None:
            # Lazy import: repro.perf pulls in modules that import the
            # operators package.
            from repro.perf.batched import batched_fmmp_costs

            return batched_fmmp_costs(self.mutation.nu, batch, form=self.form)
        if self._blocks is not None:
            # Σ per-group contraction cost: N * 2^{g_i} mults/adds each.
            contraction = sum(2.0 * n * (1 << b) for b in self.mutation.group_sizes)
            flops = contraction + scale_passes * n
            bytes_moved = 8.0 * (2.0 * n * len(self._blocks) + 3.0 * scale_passes * n)
            flops *= batch
            bytes_moved *= batch
        else:
            flops = 6.0 * (n / 2.0) * nu + scale_passes * n
            bytes_moved = 8.0 * (4.0 * (n / 2.0) * nu + 3.0 * scale_passes * n)
        return OperatorCosts(
            flops=flops, bytes_moved=bytes_moved, storage_bytes=8.0 * n, batch=batch
        )

"""Implicit matrix–vector products with ``W``.

Three interchangeable operators, exactly the cast of the paper's
experiments:

* :class:`~repro.operators.smvp.Smvp` — the standard dense product,
  ``Θ(N²)`` time *and* memory (baseline; small ν only),
* :class:`~repro.operators.xmvp.Xmvp` — the XOR-based implicit sparse
  product of [10] with cut-off distance ``dmax``;
  ``Xmvp(ν) ≡ Smvp`` numerically, ``Θ(N·Σ_{k≤dmax} C(ν,k))`` time,
  ``Θ(N)`` memory,
* :class:`~repro.operators.fmmp.Fmmp` — the paper's fast mutation matrix
  product, exact, ``Θ(N log₂ N)`` time, in-situ.

All operate on any of the three equivalent eigenproblem forms (Eqs. 3–5):
``right`` (``Q·F``), ``symmetric`` (``F^½·Q·F^½``), ``left`` (``F·Q``).
"""

from repro.operators.base import ImplicitOperator, OperatorCosts, FORMS
from repro.operators.smvp import Smvp
from repro.operators.xmvp import Xmvp
from repro.operators.fmmp import Fmmp
from repro.operators.batched import BatchedFmmp
from repro.operators.shifted import ShiftedOperator
from repro.operators.truncated import TruncatedWalsh
from repro.operators.dense_w import dense_w, convert_eigenvector

__all__ = [
    "TruncatedWalsh",
    "ImplicitOperator",
    "OperatorCosts",
    "FORMS",
    "Smvp",
    "Xmvp",
    "Fmmp",
    "BatchedFmmp",
    "ShiftedOperator",
    "dense_w",
    "convert_eigenvector",
]

"""``BatchedFmmp`` — the multi-vector fast mutation matrix product.

The service scheduler groups jobs by :attr:`SolveJob.operator_key`, i.e.
by mutation operator ``Q`` (ν, p, model, seed) but *not* by landscape.
Jobs in one group therefore share the expensive part of ``W = Q·F`` —
the ν-stage butterfly — and differ only in the cheap diagonal ``F``.
This operator exploits exactly that: ``B`` right-hand sides (optionally
each with its *own* landscape) ride one stage-fused butterfly stream
(:func:`repro.transforms.batched.batched_butterfly_transform`), with the
per-column ``F`` / ``F^{1/2}`` scalings folded in as ``(N, B)``
pre/post-scale blocks.

Two modes:

* **shared landscape** (``per_column=False``): one
  :class:`~repro.landscapes.base.FitnessLandscape`, behaves like a
  drop-in :class:`~repro.operators.fmmp.Fmmp` whose :meth:`matmat` is
  fused — this is what the verification oracle exercises;
* **per-column landscapes** (``per_column=True``): a sequence of ``B``
  landscapes, column ``j`` of ``matmat`` computes ``W_j · v_j`` with
  ``W_j = form(Q, F_j)`` — this is what
  :class:`~repro.solvers.power.BlockPowerIteration` and the service's
  batched jobs use.

Grouped mutation models have no 2×2 butterfly; they fall back to a
per-column Kronecker contraction (still one operator instance, same
interface).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.base import MutationModel
from repro.mutation.grouped import GroupedMutation
from repro.mutation.persite import PerSiteMutation
from repro.mutation.uniform import UniformMutation
from repro.operators.base import FORMS, ImplicitOperator, OperatorCosts
from repro.transforms.batched import batched_butterfly_transform
from repro.transforms.kronecker import kron_matvec

__all__ = ["BatchedFmmp"]

_VARIANTS = ("eq9", "eq10")


class BatchedFmmp(ImplicitOperator):
    """Stage-fused multi-vector ``W``-product sharing one butterfly stream.

    Parameters
    ----------
    mutation:
        The shared mutation model ``Q``.
    landscapes:
        Either a single :class:`FitnessLandscape` (shared by every
        column) or a sequence of ``B`` landscapes (one per column).
    form:
        ``right``/``symmetric``/``left`` (Eqs. 3–5), applied per column.
    variant:
        Stage traversal order, ``"eq9"`` or ``"eq10"``.
    threads:
        Panel-engine thread count (``None`` reads ``REPRO_NUM_THREADS``,
        default 1).  With ``threads > 1`` (or explicit ``panels``)
        :meth:`matmat` runs the panel-parallel fused kernel — output
        bit-identical to the serial kernel for every ``(threads,
        panels)``; grouped models keep their serial per-column fallback.
    panels:
        Panel count ``R``; defaults to the roofline
        :func:`repro.perf.parallel.auto_panels` pick.

    Examples
    --------
    >>> from repro.mutation import UniformMutation
    >>> from repro.landscapes import SinglePeakLandscape
    >>> op = BatchedFmmp(UniformMutation(6, 0.01), SinglePeakLandscape(6))
    >>> import numpy as np
    >>> op.matmat(np.ones((64, 3))).shape
    (64, 3)
    """

    def __init__(
        self,
        mutation: MutationModel,
        landscapes: FitnessLandscape | Sequence[FitnessLandscape],
        form: str = "right",
        variant: str = "eq9",
        *,
        threads: int | None = None,
        panels: int | None = None,
    ):
        if form not in FORMS:
            raise ValidationError(f"form must be one of {FORMS}, got {form!r}")
        if variant not in _VARIANTS:
            raise ValidationError(f"variant must be one of {_VARIANTS}, got {variant!r}")
        self.mutation = mutation
        self.form = form
        self.variant = variant
        self.n = mutation.n

        if isinstance(landscapes, FitnessLandscape):
            if landscapes.nu != mutation.nu:
                raise ValidationError(
                    f"landscape (nu={landscapes.nu}) disagrees with "
                    f"mutation (nu={mutation.nu})"
                )
            self.per_column = False
            self.landscapes: tuple[FitnessLandscape, ...] = (landscapes,)
            self._f = np.ascontiguousarray(landscapes.values(), dtype=np.float64)
        else:
            lands = tuple(landscapes)
            if not lands:
                raise ValidationError("BatchedFmmp needs at least one landscape")
            for j, land in enumerate(lands):
                if land.nu != mutation.nu:
                    raise ValidationError(
                        f"landscapes[{j}] (nu={land.nu}) disagrees with "
                        f"mutation (nu={mutation.nu})"
                    )
            self.per_column = True
            self.landscapes = lands
            # (N, B): column j is F_j, contiguous for the fused kernel.
            self._f = np.ascontiguousarray(
                np.stack([land.values() for land in lands], axis=1), dtype=np.float64
            )
        self._sqrt_f = np.sqrt(self._f) if form == "symmetric" else None

        if isinstance(mutation, (UniformMutation, PerSiteMutation)):
            self._bit_factors = mutation.factors_per_bit()
            self._blocks = None
        elif isinstance(mutation, GroupedMutation):
            self._bit_factors = None
            self._blocks = mutation.blocks()
        else:  # pragma: no cover - future models fall back to .apply
            self._bit_factors = None
            self._blocks = None

        # Lazy imports: repro.transforms.parallel touches the distributed
        # package, which imports the solver stack above this module.
        from repro.transforms.parallel import resolve_threads

        self.threads = resolve_threads(threads)
        parallel_requested = self.threads > 1 or panels is not None
        self.panels = 1
        self.panel_reducer = None
        self._engine = None
        if parallel_requested and self._bit_factors is not None:
            from repro.perf.parallel import auto_panels
            from repro.transforms.parallel import (
                PanelReducer,
                get_engine,
                resolve_panels,
            )

            if panels is None:
                self.panels = auto_panels(
                    mutation.nu, self.batch, threads=self.threads
                )
            else:
                self.panels = resolve_panels(panels, mutation.nu, threads=self.threads)
            self._engine = get_engine(self.threads)
            self.panel_reducer = PanelReducer(self.panels, engine=self._engine)
        self._parallel = parallel_requested and self._bit_factors is not None

    # --------------------------------------------------------------- state
    @property
    def batch(self) -> int:
        """Number of landscape columns (1 in shared mode)."""
        return len(self.landscapes)

    @property
    def is_symmetric(self) -> bool:
        return self.form == "symmetric" and self.mutation.is_symmetric

    # -------------------------------------------------------------- scales
    def _scales(self, columns: Sequence[int] | None):
        """Pre/post diagonal scales for the requested columns.

        Returns ``(pre, post)`` with shapes ``(N,)`` (shared mode) or
        ``(N, B')`` (per-column mode, ``B'`` selected columns), per the
        form table of :mod:`repro.operators.base`.
        """
        f, sf = self._f, self._sqrt_f
        if self.per_column and columns is not None:
            idx = np.asarray(columns, dtype=np.intp)
            f = np.ascontiguousarray(f[:, idx])
            sf = np.ascontiguousarray(sf[:, idx]) if sf is not None else None
        if self.form == "right":
            return f, None
        if self.form == "symmetric":
            return sf, sf
        return None, f  # left

    def _check_columns(self, b: int, columns: Sequence[int] | None) -> None:
        if not self.per_column:
            if columns is not None:
                raise ValidationError(
                    "columns only applies to a per-column BatchedFmmp"
                )
            return
        expected = len(columns) if columns is not None else self.batch
        if b != expected:
            raise ValidationError(
                f"block has {b} columns but {expected} landscape columns "
                "were selected"
            )

    # ------------------------------------------------------------- product
    def matmat(
        self,
        block: np.ndarray,
        *,
        columns: Sequence[int] | None = None,
        out: np.ndarray | None = None,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        """``(N, B)`` block product; column ``j`` is ``W_j · block[:, j]``.

        Parameters
        ----------
        block:
            ``(N, B)`` input block (never mutated).
        columns:
            In per-column mode, the landscape indices backing the block's
            columns (defaults to all, in order).  Used by the block power
            iteration to keep driving the *active* columns after
            deflation.
        out, scratch:
            Optional reusable ``(N, B)`` float64 C-contiguous buffers,
            forwarded to the fused kernel.
        """
        arr = np.asarray(block)
        if arr.ndim != 2:
            raise ValidationError(f"matmat expects a 2-D (N, B) block, got shape {arr.shape}")
        if arr.shape[0] != self.n:
            raise ValidationError(f"matmat block must have {self.n} rows, got {arr.shape[0]}")
        b = arr.shape[1]
        self._check_columns(b, columns)
        if b == 0:
            return np.empty((self.n, 0), dtype=np.float64)
        pre, post = self._scales(columns)
        if self._bit_factors is not None:
            if self._parallel:
                from repro.transforms.parallel import parallel_butterfly_transform

                return parallel_butterfly_transform(
                    arr,
                    self._bit_factors,
                    variant=self.variant,
                    pre_scale=pre,
                    post_scale=post,
                    panels=self.panels,
                    engine=self._engine,
                    out=out,
                    scratch=scratch,
                )
            return batched_butterfly_transform(
                arr,
                self._bit_factors,
                variant=self.variant,
                pre_scale=pre,
                post_scale=post,
                out=out,
                scratch=scratch,
            )
        # Grouped / generic fallback: per-column contraction with the
        # same scale folding semantics.
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        result = np.empty((self.n, b), dtype=np.float64) if out is None else out
        for j in range(b):
            w = arr[:, j].copy()
            if pre is not None:
                w *= pre if pre.ndim == 1 else pre[:, j]
            q = kron_matvec(self._blocks, w) if self._blocks is not None else self.mutation.apply(w)
            if post is not None:
                q = q * (post if post.ndim == 1 else post[:, j])
            result[:, j] = q
        return result

    def matvec(self, v: np.ndarray, *, column: int = 0) -> np.ndarray:
        """Single-column product ``W_column · v`` (oracle convenience)."""
        v = self.check(v)
        if self.per_column:
            cols: Sequence[int] | None = (column,)
        else:
            if column != 0:
                raise ValidationError("shared-landscape BatchedFmmp has a single column 0")
            cols = None
        return self.matmat(v.reshape(self.n, 1), columns=cols).reshape(self.n)

    # --------------------------------------------------------------- costs
    def costs(self, *, batch: int | None = None) -> OperatorCosts:
        """Fused-kernel costs for a ``(N, batch)`` product (defaults to
        this operator's own column count)."""
        b = self.batch if batch is None else batch
        if b < 1:
            raise ValidationError(f"batch must be >= 1, got {b}")
        if self._blocks is not None:
            n = float(self.n)
            contraction = sum(2.0 * n * (1 << g) for g in self.mutation.group_sizes)
            scale_passes = 2.0 if self.form == "symmetric" else 1.0
            return OperatorCosts(
                flops=b * (contraction + scale_passes * n),
                bytes_moved=b * 8.0 * (2.0 * n * len(self._blocks) + 3.0 * scale_passes * n),
                storage_bytes=8.0 * n * len(self.landscapes),
                batch=b,
            )
        from repro.perf.batched import batched_fmmp_costs

        return batched_fmmp_costs(self.mutation.nu, b, form=self.form)

"""``Smvp`` — the standard (dense) matrix–vector product baseline.

This is what "existing algorithms" in the paper's abstract do: store all
``N²`` entries of ``W`` and multiply.  ``Θ(N²)`` time and memory confine
it to small ν; it exists as the reference point for Figures 2–4 and for
the correctness tests of the implicit operators.
"""

from __future__ import annotations

import numpy as np

from repro.landscapes.base import FitnessLandscape
from repro.mutation.base import MutationModel
from repro.operators.base import FormMixin, ImplicitOperator, OperatorCosts
from repro.operators.dense_w import dense_w

__all__ = ["Smvp"]


class Smvp(ImplicitOperator, FormMixin):
    """Dense ``W`` product.

    Parameters
    ----------
    mutation:
        Any mutation model with a ``dense()`` method.
    landscape:
        The fitness landscape.
    form:
        Eigenproblem form, one of ``right``/``symmetric``/``left``.
    max_nu:
        Densification guard (default ν ≤ 13 ⇒ ≤ 512 MiB).
    """

    def __init__(
        self,
        mutation: MutationModel,
        landscape: FitnessLandscape,
        form: str = "right",
        *,
        max_nu: int = 13,
    ):
        self.mutation = mutation
        self._init_form(landscape, form)
        self.n = mutation.n
        self._w = dense_w(mutation, landscape, form, max_nu=max_nu)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = self.check(v)
        return self._w @ v

    @property
    def is_symmetric(self) -> bool:
        return self.form == "symmetric" and self.mutation.is_symmetric

    def costs(self) -> OperatorCosts:
        """``2N²`` flops; the matrix itself dominates the traffic."""
        n = float(self.n)
        return OperatorCosts(
            flops=2.0 * n * n,
            bytes_moved=8.0 * (n * n + 2.0 * n),
            storage_bytes=8.0 * n * n,
        )

    def to_dense(self, *, max_n: int = 1 << 13) -> np.ndarray:
        return self._w.copy()

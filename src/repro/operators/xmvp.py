"""``Xmvp(dmax)`` — the XOR-based implicit sparse product of [10].

The predecessor paper's idea: ``Q[i, j]`` depends only on
``dH(i, j) = popcount(i ^ j)``, so

    (Q·w)[i] = Σ_{k=0}^{dmax} QΓ_k · Σ_{m : popcount(m)=k} w[i ^ m]

— iterate over XOR offset masks ``m`` grouped by popcount instead of over
matrix entries.  Truncating at ``dmax < ν`` *sparsifies* ``Q`` (drops all
transitions beyond Hamming distance ``dmax``), trading accuracy for time:
``Θ(N · Σ_{k≤dmax} C(ν,k))``.  ``Xmvp(ν)`` is exact and numerically
identical to ``Smvp`` without the ``Θ(N²)`` storage.

Only defined for the **uniform** mutation model — the XOR trick needs
``Q`` constant on Hamming shells.

The masks for all ``k ≤ dmax`` are precomputed once
(:func:`repro.bitops.classes.masks_up_to_distance`); each mask costs one
gather-add pass over the vector, mirroring the memory-access behaviour
the paper reports ("due to its memory access patterns it tends to get
less competitive for increasing chain lengths").
"""

from __future__ import annotations

import numpy as np

from repro.bitops.classes import masks_up_to_distance
from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.uniform import UniformMutation
from repro.operators.base import FormMixin, ImplicitOperator, OperatorCosts

__all__ = ["Xmvp"]


class Xmvp(ImplicitOperator, FormMixin):
    """XOR-based sparsified product with cut-off distance ``dmax``.

    Parameters
    ----------
    mutation:
        A :class:`~repro.mutation.uniform.UniformMutation` model.
    landscape:
        The fitness landscape.
    dmax:
        Maximum Hamming distance kept, ``1 <= dmax <= ν``.  ``dmax = ν``
        is exact; ``dmax = 1`` is the coarsest approximation considered
        in the paper; ``dmax = 5`` gives ≈1e−10 accuracy ([10], used in
        Fig. 3).
    form:
        Eigenproblem form (Eqs. 3–5).
    """

    def __init__(
        self,
        mutation: UniformMutation,
        landscape: FitnessLandscape,
        dmax: int,
        form: str = "right",
    ):
        if not isinstance(mutation, UniformMutation):
            raise ValidationError(
                "Xmvp requires the uniform mutation model (Q constant on Hamming shells)"
            )
        if mutation.nu != landscape.nu:
            raise ValidationError(
                f"mutation (nu={mutation.nu}) and landscape (nu={landscape.nu}) disagree"
            )
        if not 1 <= dmax <= mutation.nu:
            raise ValidationError(f"dmax must be in [1, {mutation.nu}], got {dmax}")
        self.mutation = mutation
        self.dmax = int(dmax)
        self.n = mutation.n
        self._init_form(landscape, form)
        self._q_class = mutation.class_values()
        self._masks = masks_up_to_distance(mutation.nu, self.dmax)
        self._mask_count = int(sum(len(m) for m in self._masks))
        self._idx = np.arange(self.n, dtype=np.int64)

    # ------------------------------------------------------------- product
    def _q_truncated(self, w: np.ndarray) -> np.ndarray:
        """``Q_sparsified · w`` by accumulating XOR-shifted copies."""
        out = self._q_class[0] * w  # k = 0: the identity mask
        idx = self._idx
        for k in range(1, self.dmax + 1):
            qk = self._q_class[k]
            acc = np.zeros_like(w)
            for m in self._masks[k]:
                acc += w[idx ^ m]
            out += qk * acc
        return out

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = self.check(v)
        return self._apply_form(v, self._q_truncated)

    @property
    def is_symmetric(self) -> bool:
        return self.form == "symmetric"  # uniform Q is always symmetric

    @property
    def is_exact(self) -> bool:
        """True when ``dmax = ν`` (no sparsification)."""
        return self.dmax == self.mutation.nu

    def costs(self) -> OperatorCosts:
        """One gather + add pass of length N per mask: the paper's
        ``Θ(N · Σ_{k≤dmax} C(ν,k))``."""
        n = float(self.n)
        passes = float(self._mask_count)
        return OperatorCosts(
            flops=2.0 * n * passes + 2.0 * n,
            # each pass: read w (gathered) + read/write accumulator
            bytes_moved=8.0 * n * (3.0 * passes + 2.0),
            storage_bytes=8.0 * passes + 8.0 * n,
        )

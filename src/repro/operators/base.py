"""Operator protocol and the common ``W``-form plumbing.

Every solver in :mod:`repro.solvers` consumes an
:class:`ImplicitOperator`: something with a dimension, a ``matvec``, a
symmetry flag, and a static cost descriptor (flops / bytes per product)
that the performance models of :mod:`repro.perf` consume.

The three equivalent eigenproblem forms (paper Eqs. 3–5) differ only in
how the diagonal ``F`` wraps the mutation product:

========== =========================== ==============================
form        matrix                      eigenvector relation
========== =========================== ==============================
``right``   ``W_R = Q · F``             ``x_R = F^{-1/2} · x_S``
``symmetric`` ``W_S = F^{1/2}·Q·F^{1/2}`` (symmetric ⇒ Lanczos-friendly)
``left``    ``W_L = F · Q``             ``x_L = F^{1/2} · x_S``
========== =========================== ==============================

All share the same spectrum; concentrations are read from ``x_R``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.util.validation import check_vector

__all__ = ["ImplicitOperator", "OperatorCosts", "FORMS", "FormMixin"]

FORMS = ("right", "symmetric", "left")


@dataclass(frozen=True)
class OperatorCosts:
    """Static per-matvec cost estimates for performance modeling.

    Attributes
    ----------
    flops:
        Floating-point operations per product.
    bytes_moved:
        Main-memory traffic per product (reads + writes, in bytes),
        assuming no cache reuse beyond registers — the right model for
        the streaming, bandwidth-bound kernels of the paper (Sec. 4).
    storage_bytes:
        Persistent storage the operator itself needs (dense matrix,
        mask tables, …); vectors excluded.
    """

    flops: float
    bytes_moved: float
    storage_bytes: float


class ImplicitOperator(abc.ABC):
    """A square linear operator available only through its action."""

    n: int

    @abc.abstractmethod
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Return the product with ``v`` (never mutates the input)."""

    @property
    @abc.abstractmethod
    def is_symmetric(self) -> bool:
        """Whether the represented matrix is symmetric."""

    @abc.abstractmethod
    def costs(self) -> OperatorCosts:
        """Static cost descriptor for one :meth:`matvec`."""

    # --------------------------------------------------------- conveniences
    def __matmul__(self, v: np.ndarray) -> np.ndarray:
        return self.matvec(v)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def check(self, v: np.ndarray) -> np.ndarray:
        return check_vector(v, self.n, "v")

    def to_dense(self, *, max_n: int = 1 << 13) -> np.ndarray:
        """Materialize by applying to the identity (tests / small ν)."""
        if self.n > max_n:
            raise ValidationError(f"refusing to densify an operator of dimension {self.n}")
        eye = np.eye(self.n)
        cols = [self.matvec(eye[:, j]) for j in range(self.n)]
        return np.stack(cols, axis=1)


class FormMixin:
    """Shared handling of the right/symmetric/left forms (Eqs. 3–5).

    Subclasses call :meth:`_init_form` during construction and wrap their
    pure-``Q`` product with :meth:`_apply_form`.
    """

    def _init_form(self, landscape: FitnessLandscape, form: str) -> None:
        if form not in FORMS:
            raise ValidationError(f"form must be one of {FORMS}, got {form!r}")
        self.form = form
        self.landscape = landscape
        self._f = landscape.values()
        self._sqrt_f = np.sqrt(self._f) if form == "symmetric" else None

    def _apply_form(self, v: np.ndarray, q_apply) -> np.ndarray:
        """Compute ``W·v`` given a callable ``q_apply(u) = Q·u``."""
        if self.form == "right":
            return q_apply(self._f * v)
        if self.form == "symmetric":
            return self._sqrt_f * q_apply(self._sqrt_f * v)
        return self._f * q_apply(v)  # left

    @property
    def _form_is_symmetric(self) -> bool:
        return self.form == "symmetric"

"""Operator protocol and the common ``W``-form plumbing.

Every solver in :mod:`repro.solvers` consumes an
:class:`ImplicitOperator`: something with a dimension, a ``matvec``, a
symmetry flag, and a static cost descriptor (flops / bytes per product)
that the performance models of :mod:`repro.perf` consume.

The three equivalent eigenproblem forms (paper Eqs. 3–5) differ only in
how the diagonal ``F`` wraps the mutation product:

========== =========================== ==============================
form        matrix                      eigenvector relation
========== =========================== ==============================
``right``   ``W_R = Q · F``             ``x_R = F^{-1/2} · x_S``
``symmetric`` ``W_S = F^{1/2}·Q·F^{1/2}`` (symmetric ⇒ Lanczos-friendly)
``left``    ``W_L = F · Q``             ``x_L = F^{1/2} · x_S``
========== =========================== ==============================

All share the same spectrum; concentrations are read from ``x_R``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.util.validation import check_vector

__all__ = ["ImplicitOperator", "OperatorCosts", "FORMS", "FormMixin"]

FORMS = ("right", "symmetric", "left")


@dataclass(frozen=True)
class OperatorCosts:
    """Static per-product cost estimates for performance modeling.

    Attributes
    ----------
    flops:
        Floating-point operations per product (for ``batch > 1``: for the
        whole multi-vector product, i.e. all ``batch`` columns together).
    bytes_moved:
        Main-memory traffic per product (reads + writes, in bytes),
        assuming no cache reuse beyond registers — the right model for
        the streaming, bandwidth-bound kernels of the paper (Sec. 4).
        Like ``flops``, this is the total for the whole block.
    storage_bytes:
        Persistent storage the operator itself needs (dense matrix,
        mask tables, …); vectors excluded.
    batch:
        Number of right-hand-side columns the product applies to at once
        (1 for a plain matvec).
    """

    flops: float
    bytes_moved: float
    storage_bytes: float
    batch: int = 1

    def per_vector(self) -> "OperatorCosts":
        """Amortized costs for a single column of the batch."""
        if self.batch == 1:
            return self
        return OperatorCosts(
            flops=self.flops / self.batch,
            bytes_moved=self.bytes_moved / self.batch,
            storage_bytes=self.storage_bytes,
            batch=1,
        )


class ImplicitOperator(abc.ABC):
    """A square linear operator available only through its action."""

    n: int

    @abc.abstractmethod
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Return the product with ``v`` (never mutates the input)."""

    @property
    @abc.abstractmethod
    def is_symmetric(self) -> bool:
        """Whether the represented matrix is symmetric."""

    @abc.abstractmethod
    def costs(self) -> OperatorCosts:
        """Static cost descriptor for one :meth:`matvec`."""

    def matmat(self, block: np.ndarray) -> np.ndarray:
        """Product with every column of an ``(n, B)`` block.

        The default simply loops :meth:`matvec` column by column —
        operators with a genuinely batched kernel (notably
        :class:`~repro.operators.batched.BatchedFmmp`) override this
        with a single fused sweep over the whole block.
        """
        arr = np.asarray(block, dtype=np.float64)
        if arr.ndim != 2:
            raise ValidationError(f"matmat expects a 2-D (n, B) block, got shape {arr.shape}")
        if arr.shape[0] != self.n:
            raise ValidationError(f"matmat block must have {self.n} rows, got {arr.shape[0]}")
        if arr.shape[1] == 0:
            return np.empty_like(arr)
        return np.stack([self.matvec(arr[:, j]) for j in range(arr.shape[1])], axis=1)

    # --------------------------------------------------------- conveniences
    def __matmul__(self, v: np.ndarray) -> np.ndarray:
        return self.matvec(v)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def check(self, v: np.ndarray) -> np.ndarray:
        return check_vector(v, self.n, "v")

    def to_dense(self, *, max_n: int = 1 << 13) -> np.ndarray:
        """Materialize by applying to the identity (tests / small ν)."""
        if self.n > max_n:
            raise ValidationError(f"refusing to densify an operator of dimension {self.n}")
        eye = np.eye(self.n)
        cols = [self.matvec(eye[:, j]) for j in range(self.n)]
        return np.stack(cols, axis=1)


class FormMixin:
    """Shared handling of the right/symmetric/left forms (Eqs. 3–5).

    Subclasses call :meth:`_init_form` during construction and wrap their
    pure-``Q`` product with :meth:`_apply_form`.
    """

    def _init_form(self, landscape: FitnessLandscape, form: str) -> None:
        if form not in FORMS:
            raise ValidationError(f"form must be one of {FORMS}, got {form!r}")
        self.form = form
        self.landscape = landscape
        self._f = landscape.values()
        self._sqrt_f = np.sqrt(self._f) if form == "symmetric" else None

    def _apply_form(self, v: np.ndarray, q_apply) -> np.ndarray:
        """Compute ``W·v`` given a callable ``q_apply(u) = Q·u``."""
        if self.form == "right":
            return q_apply(self._f * v)
        if self.form == "symmetric":
            return self._sqrt_f * q_apply(self._sqrt_f * v)
        return self._f * q_apply(v)  # left

    @property
    def _form_is_symmetric(self) -> bool:
        return self.form == "symmetric"

"""Dense construction of ``W`` and eigenvector form conversions.

Used by the dense baseline solver and the validation tests; the implicit
operators never call into this module.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.base import MutationModel
from repro.operators.base import FORMS

__all__ = ["dense_w", "convert_eigenvector"]


def dense_w(
    mutation: MutationModel,
    landscape: FitnessLandscape,
    form: str = "right",
    *,
    max_nu: int = 13,
) -> np.ndarray:
    """Materialize ``W`` in the requested form (Eqs. 3–5).

    Parameters
    ----------
    mutation, landscape:
        Must agree on the chain length.
    form:
        ``right`` (``Q·F``), ``symmetric`` (``F^½·Q·F^½``) or ``left``
        (``F·Q``).
    max_nu:
        Densification guard.
    """
    if form not in FORMS:
        raise ValidationError(f"form must be one of {FORMS}, got {form!r}")
    if mutation.nu != landscape.nu:
        raise ValidationError(
            f"mutation (nu={mutation.nu}) and landscape (nu={landscape.nu}) disagree"
        )
    if mutation.nu > max_nu:
        raise ValidationError(f"dense W refused for nu={mutation.nu} > {max_nu}")
    q = mutation.dense()
    f = landscape.values()
    if form == "right":
        return q * f[None, :]
    if form == "left":
        return q * f[:, None]
    s = np.sqrt(f)
    return (s[:, None] * q) * s[None, :]


def convert_eigenvector(x: np.ndarray, landscape: FitnessLandscape, from_form: str) -> np.ndarray:
    """Convert an eigenvector of any form into concentrations ``x_R``.

    Per the paper: ``x_R = F^{-1/2}·x_S`` and ``x_R = F^{-1}·x_L``.  The
    result is rescaled to the 1-norm (relative concentrations) with a
    positive orientation.
    """
    if from_form not in FORMS:
        raise ValidationError(f"form must be one of {FORMS}, got {from_form!r}")
    x = np.asarray(x, dtype=np.float64)
    f = landscape.values()
    if from_form == "right":
        out = x.copy()
    elif from_form == "symmetric":
        out = x / np.sqrt(f)
    else:
        out = x / f
    # Perron vector: orient positively, normalize as concentrations.
    if out.sum() < 0:
        out = -out
    total = out.sum()
    if total <= 0:
        raise ValidationError("eigenvector has non-positive mass; not a Perron vector")
    return out / total

"""Truncated-Walsh approximative product (paper future work, implemented).

The conclusions list "approximative strategies for a fast matrix vector
product" as an open direction.  The spectral structure of Sec. 2 offers
a principled one: in the Walsh basis ``Q = V Λ V`` with
``Λ_ii = (1−2p)^{popcount(i)}`` — the spectrum decays *geometrically* in
the popcount of the Walsh index.  Zeroing every mode with popcount above
a cut ``k_max`` gives the low-rank approximation

    Q_k = V Λ_k V,     rank(Q_k) = Σ_{j ≤ k_max} C(ν, j),

with operator-norm error **exactly** ``(1−2p)^{k_max+1}`` (the largest
dropped eigenvalue) — an a-priori bound the ``Xmvp(dmax)`` truncation of
[10] does not have.  The product still costs two FWHT passes
(``Θ(N log₂ N)``) plus a now-sparse diagonal; the real payoff is the
*compressed representation*: iterates can live in the retained-mode
subspace, cutting memory and (in the distributed setting) traffic by the
retained fraction.

Complements rather than replaces ``Fmmp`` — an approximation knob with a
certificate, for workloads that can trade certified accuracy for state
compression.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.popcount import distance_to_master
from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.uniform import UniformMutation
from repro.operators.base import FormMixin, ImplicitOperator, OperatorCosts
from repro.transforms.fwht import fwht
from repro.util.binomial import binomial_row

__all__ = ["TruncatedWalsh"]


class TruncatedWalsh(ImplicitOperator, FormMixin):
    """Low-rank Walsh-spectral approximation of ``W`` (uniform model).

    Parameters
    ----------
    mutation:
        A :class:`UniformMutation` (the closed-form spectrum is its
        privilege).
    landscape:
        The fitness landscape.
    k_max:
        Largest Walsh-index popcount retained, ``0 <= k_max <= ν``;
        ``k_max = ν`` reproduces the exact product.
    form:
        Eigenproblem form (Eqs. 3–5).
    """

    def __init__(
        self,
        mutation: UniformMutation,
        landscape: FitnessLandscape,
        k_max: int,
        form: str = "right",
    ):
        if not isinstance(mutation, UniformMutation):
            raise ValidationError("TruncatedWalsh requires the uniform mutation model")
        if mutation.nu != landscape.nu:
            raise ValidationError("mutation and landscape chain lengths disagree")
        if not 0 <= k_max <= mutation.nu:
            raise ValidationError(f"k_max must be in [0, {mutation.nu}], got {k_max}")
        self.mutation = mutation
        self.k_max = int(k_max)
        self.n = mutation.n
        self._init_form(landscape, form)
        pop = distance_to_master(mutation.nu)
        lam = (1.0 - 2.0 * mutation.p) ** pop.astype(np.float64)
        lam[pop > self.k_max] = 0.0
        self._lam = lam
        self._retained = int((pop <= self.k_max).sum())

    # ----------------------------------------------------------- structure
    @property
    def rank(self) -> int:
        """Retained Walsh modes, ``Σ_{j ≤ k_max} C(ν, j)``."""
        return self._retained

    @property
    def retained_fraction(self) -> float:
        """``rank / N`` — the compression factor of the representation."""
        return self._retained / float(self.n)

    def error_bound(self) -> float:
        """A-priori spectral-norm bound ``‖Q − Q_k‖₂ = (1−2p)^{k_max+1}``
        (0 when nothing is truncated)."""
        if self.k_max >= self.mutation.nu:
            return 0.0
        return (1.0 - 2.0 * self.mutation.p) ** (self.k_max + 1)

    @property
    def is_symmetric(self) -> bool:
        return self.form == "symmetric"

    # ----------------------------------------------------------- operations
    def _q_truncated(self, w: np.ndarray) -> np.ndarray:
        out = fwht(w, ortho=True)
        out *= self._lam
        return fwht(out, ortho=True, in_place=True)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = self.check(v)
        if self.form == "left":
            return self._f * self._q_truncated(v.copy())
        return self._apply_form(v, self._q_truncated)

    def costs(self) -> OperatorCosts:
        """Two FWHT passes + the spectral diagonal + the form scaling."""
        n = float(self.n)
        nu = float(self.mutation.nu)
        scale_passes = 2.0 if self.form == "symmetric" else 1.0
        fwht_flops = 2.0 * (n / 2.0) * nu * 2.0  # two transforms
        return OperatorCosts(
            flops=fwht_flops + n + scale_passes * n,
            bytes_moved=8.0 * (4.0 * (n / 2.0) * nu * 2.0 + 3.0 * n + 3.0 * scale_passes * n),
            storage_bytes=8.0 * n,
        )

    @staticmethod
    def rank_for_nu(nu: int, k_max: int) -> int:
        """Retained-mode count without building the operator."""
        if not 0 <= k_max <= nu:
            raise ValidationError(f"k_max must be in [0, {nu}]")
        return int(binomial_row(nu)[: k_max + 1].sum())

"""Cross-solver consistency harness.

Runs the same quasispecies problem through every applicable solver route
and reports pairwise agreement — the executable form of the paper's "the
reference computation and the fastest combination deliver the same
results".  Used by the integration tests, exposed to users through
``python -m repro.cli crosscheck``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.model.concentrations import class_concentrations
from repro.model.quasispecies import QuasispeciesModel
from repro.mutation.base import MutationModel
from repro.mutation.uniform import UniformMutation

__all__ = ["crosscheck", "CrosscheckReport", "RouteOutcome"]


@dataclass
class RouteOutcome:
    """One solver route's result in the cross-check."""

    label: str
    eigenvalue: float
    class_concentrations: np.ndarray
    iterations: int
    ok: bool = True
    error: str = ""


@dataclass
class CrosscheckReport:
    """Agreement report across all routes.

    Attributes
    ----------
    outcomes:
        Per-route results (failed routes carry their error message).
    max_eigenvalue_spread:
        Largest |λ_a − λ_b| across successful routes.
    max_concentration_spread:
        Largest per-class concentration disagreement across routes.
    consistent:
        Whether all spreads are within the requested tolerance.
    tolerance:
        The acceptance tolerance used.
    """

    outcomes: list[RouteOutcome] = field(default_factory=list)
    max_eigenvalue_spread: float = 0.0
    max_concentration_spread: float = 0.0
    consistent: bool = True
    tolerance: float = 0.0

    def summary_rows(self) -> list[list[str]]:
        rows = []
        for o in self.outcomes:
            if o.ok:
                rows.append([o.label, f"{o.eigenvalue:.12f}", str(o.iterations), "ok"])
            else:
                rows.append([o.label, "-", "-", f"failed: {o.error}"])
        return rows


def _routes(model: QuasispeciesModel) -> list[tuple[str, dict]]:
    """The solver routes applicable to this model's structure."""
    routes: list[tuple[str, dict]] = [
        ("Pi(Fmmp)", dict(method="power", operator="fmmp")),
        ("Pi(Fmmp, shifted)" , dict(method="power", operator="fmmp", shift=True)),
        ("Lanczos", dict(method="lanczos")),
        ("Arnoldi", dict(method="arnoldi")),
    ]
    if isinstance(model.mutation, UniformMutation):
        routes.insert(1, ("Pi(Xmvp(nu))", dict(method="power", operator="xmvp")))
    if model.nu <= 10:
        routes.append(("Dense", dict(method="dense")))
    if model.landscape.is_error_class_landscape and isinstance(model.mutation, UniformMutation):
        routes.append(("Reduced(nu+1)", dict(method="reduced")))
    # Shift only valid for the uniform model.
    if not isinstance(model.mutation, UniformMutation):
        routes = [r for r in routes if "shifted" not in r[0]]
    return routes


def crosscheck(
    landscape: FitnessLandscape,
    mutation: MutationModel | None = None,
    *,
    p: float | None = None,
    tol: float = 1e-11,
    accept: float = 1e-7,
) -> CrosscheckReport:
    """Solve via every applicable route and compare.

    Parameters
    ----------
    landscape, mutation, p:
        Model ingredients (as in :class:`QuasispeciesModel`).
    tol:
        Solver tolerance for the iterative routes.
    accept:
        Maximum allowed spread in eigenvalue and class concentrations
        for the report to be marked ``consistent``.
    """
    model = QuasispeciesModel(landscape, mutation, p=p)
    report = CrosscheckReport(tolerance=accept)
    for label, kwargs in _routes(model):
        try:
            res = model.solve(tol=tol, **kwargs)
            conc = res.concentrations
            gamma = (
                conc
                if conc.shape[0] == model.nu + 1
                else class_concentrations(conc, model.nu)
            )
            report.outcomes.append(
                RouteOutcome(
                    label=label,
                    eigenvalue=float(res.eigenvalue),
                    class_concentrations=gamma,
                    iterations=int(getattr(res, "iterations", 0)),
                )
            )
        except Exception as exc:  # noqa: BLE001 - report, don't crash the harness
            report.outcomes.append(
                RouteOutcome(
                    label=label,
                    eigenvalue=float("nan"),
                    class_concentrations=np.array([]),
                    iterations=0,
                    ok=False,
                    error=str(exc),
                )
            )

    good = [o for o in report.outcomes if o.ok]
    if len(good) < 2:
        raise ValidationError("fewer than two solver routes succeeded; nothing to compare")
    eigs = [o.eigenvalue for o in good]
    report.max_eigenvalue_spread = float(max(eigs) - min(eigs))
    stacks = np.stack([o.class_concentrations for o in good])
    report.max_concentration_spread = float(
        (stacks.max(axis=0) - stacks.min(axis=0)).max()
    )
    report.consistent = (
        report.max_eigenvalue_spread <= accept
        and report.max_concentration_spread <= accept
        and all(o.ok for o in report.outcomes)
    )
    return report

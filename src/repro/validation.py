"""Cross-solver consistency harness.

Runs the same quasispecies problem through every applicable solver route
and reports pairwise agreement — the executable form of the paper's "the
reference computation and the fastest combination deliver the same
results".  Used by the integration tests, exposed to users through
``python -m repro.cli crosscheck``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.model.quasispecies import QuasispeciesModel
from repro.mutation.base import MutationModel

__all__ = ["crosscheck", "CrosscheckReport", "RouteOutcome"]


@dataclass
class RouteOutcome:
    """One solver route's result in the cross-check."""

    label: str
    eigenvalue: float
    class_concentrations: np.ndarray
    iterations: int
    ok: bool = True
    error: str = ""


@dataclass
class CrosscheckReport:
    """Agreement report across all routes.

    Attributes
    ----------
    outcomes:
        Per-route results (failed routes carry their error message).
    max_eigenvalue_spread:
        Largest |λ_a − λ_b| across successful routes.
    max_concentration_spread:
        Largest per-class concentration disagreement across routes.
    consistent:
        Whether all spreads are within the requested tolerance.
    tolerance:
        The acceptance tolerance used.
    """

    outcomes: list[RouteOutcome] = field(default_factory=list)
    max_eigenvalue_spread: float = 0.0
    max_concentration_spread: float = 0.0
    consistent: bool = True
    tolerance: float = 0.0

    def summary_rows(self) -> list[list[str]]:
        rows = []
        for o in self.outcomes:
            if o.ok:
                rows.append([o.label, f"{o.eigenvalue:.12f}", str(o.iterations), "ok"])
            else:
                rows.append([o.label, "-", "-", f"failed: {o.error}"])
        return rows


def _routes(model: QuasispeciesModel) -> list[tuple[str, dict]]:
    """The solver routes applicable to this model's structure.

    Delegates to :func:`repro.verify.oracles.solver_routes` — the single
    source of truth shared with the verification registry — so the
    user-facing ``crosscheck`` and ``repro-quasispecies verify`` can
    never disagree about which routes exist.
    """
    from repro.verify.oracles import solver_routes

    return [(r.label, r.kwargs) for r in solver_routes(model)]


def crosscheck(
    landscape: FitnessLandscape,
    mutation: MutationModel | None = None,
    *,
    p: float | None = None,
    tol: float = 1e-11,
    accept: float = 1e-7,
) -> CrosscheckReport:
    """Solve via every applicable route and compare.

    Parameters
    ----------
    landscape, mutation, p:
        Model ingredients (as in :class:`QuasispeciesModel`).
    tol:
        Solver tolerance for the iterative routes.
    accept:
        Maximum allowed spread in eigenvalue and class concentrations
        for the report to be marked ``consistent``.
    """
    from repro.verify.oracles import _route_gamma

    model = QuasispeciesModel(landscape, mutation, p=p)
    report = CrosscheckReport(tolerance=accept)
    for label, kwargs in _routes(model):
        try:
            res = model.solve(tol=tol, **kwargs)
            gamma = _route_gamma(res, model.nu)
            report.outcomes.append(
                RouteOutcome(
                    label=label,
                    eigenvalue=float(res.eigenvalue),
                    class_concentrations=gamma,
                    iterations=int(getattr(res, "iterations", 0)),
                )
            )
        except Exception as exc:  # noqa: BLE001 - report, don't crash the harness
            report.outcomes.append(
                RouteOutcome(
                    label=label,
                    eigenvalue=float("nan"),
                    class_concentrations=np.array([]),
                    iterations=0,
                    ok=False,
                    error=str(exc),
                )
            )

    good = [o for o in report.outcomes if o.ok]
    if len(good) < 2:
        raise ValidationError("fewer than two solver routes succeeded; nothing to compare")
    eigs = [o.eigenvalue for o in good]
    report.max_eigenvalue_spread = float(max(eigs) - min(eigs))
    stacks = np.stack([o.class_concentrations for o in good])
    report.max_concentration_spread = float(
        (stacks.max(axis=0) - stacks.min(axis=0)).max()
    )
    report.consistent = (
        report.max_eigenvalue_spread <= accept
        and report.max_concentration_spread <= accept
        and all(o.ok for o in report.outcomes)
    )
    return report

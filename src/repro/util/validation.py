"""Argument validation helpers shared across the library.

These helpers centralize the error messages and the accepted ranges for the
quantities that appear throughout the quasispecies model:

* the chain length ``nu`` (``ν`` in the paper) with ``N = 2**nu``,
* the per-site error rate ``p`` with ``0 < p <= 1/2``,
* concentration / state vectors of length ``N``.

Raising early with a precise message is cheap compared to any of the
``Θ(N log N)`` operations the library performs, so every public entry point
validates its inputs through these functions.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "check_chain_length",
    "check_error_rate",
    "check_positive",
    "check_power_of_two",
    "check_probability_vector",
    "check_vector",
]

#: Largest chain length accepted by default.  2**MAX_NU doubles is 2 GiB of
#: state for a single vector; anything beyond that needs the structured
#: (reduced / Kronecker) solvers which do not allocate full vectors.
MAX_NU = 28


def check_chain_length(nu: int, *, max_nu: int = MAX_NU) -> int:
    """Validate a chain length ``nu`` and return it as a plain ``int``.

    Parameters
    ----------
    nu:
        Chain length ``ν >= 1``.
    max_nu:
        Upper bound guarding against accidental exponential allocations.
    """
    if not isinstance(nu, (int, np.integer)) or isinstance(nu, bool):
        raise ValidationError(f"chain length nu must be an integer, got {nu!r}")
    nu = int(nu)
    if nu < 1:
        raise ValidationError(f"chain length nu must be >= 1, got {nu}")
    if nu > max_nu:
        raise ValidationError(
            f"chain length nu={nu} exceeds the safety limit {max_nu}; "
            "use the reduced or Kronecker solvers for long chains"
        )
    return nu


def check_error_rate(p: float, *, allow_zero: bool = False) -> float:
    """Validate an error rate ``p`` with ``0 < p <= 1/2`` (paper, Sec. 1).

    ``allow_zero=True`` admits ``p == 0`` (useful for sweeps that include
    the error-free point).
    """
    p = float(p)
    if np.isnan(p):
        raise ValidationError("error rate p must not be NaN")
    low_ok = p >= 0.0 if allow_zero else p > 0.0
    if not (low_ok and p <= 0.5):
        bound = "0 <= p <= 1/2" if allow_zero else "0 < p <= 1/2"
        raise ValidationError(f"error rate must satisfy {bound}, got {p}")
    return p


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite, strictly positive scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a finite positive number, got {value}")
    return value


def check_power_of_two(n: int, name: str = "n") -> int:
    """Validate that ``n`` is a positive power of two and return it."""
    if not isinstance(n, (int, np.integer)) or isinstance(n, bool):
        raise ValidationError(f"{name} must be an integer, got {n!r}")
    n = int(n)
    if n < 1 or (n & (n - 1)) != 0:
        raise ValidationError(f"{name} must be a positive power of two, got {n}")
    return n


def check_vector(v: np.ndarray, n: int, name: str = "v") -> np.ndarray:
    """Validate that ``v`` is a 1-D real vector of length ``n``.

    Returns a ``float64`` array (a view when possible, a copy when the
    dtype must change); never modifies the input.
    """
    arr = np.asarray(v)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.shape[0] != n:
        raise ValidationError(f"{name} must have length {n}, got {arr.shape[0]}")
    if not np.issubdtype(arr.dtype, np.floating):
        if not np.issubdtype(arr.dtype, np.number) or np.issubdtype(arr.dtype, np.complexfloating):
            raise ValidationError(f"{name} must be a real numeric vector, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=np.float64)


def check_probability_vector(v: np.ndarray, n: int, name: str = "v", *, atol: float = 1e-10) -> np.ndarray:
    """Validate a vector of relative concentrations: length ``n``,
    non-negative entries, summing to one within ``atol``."""
    arr = check_vector(v, n, name)
    if np.any(arr < -atol):
        raise ValidationError(f"{name} must be non-negative (concentrations)")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ValidationError(f"{name} must sum to 1 (got {total})")
    return arr

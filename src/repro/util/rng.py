"""Seed handling.

Every stochastic component of the library (random landscapes, randomized
test vectors, device-validation sampling) accepts ``seed`` arguments that
are normalized here, so results are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh OS entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread one generator
    through a whole experiment).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)

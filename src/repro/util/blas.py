"""BLAS threadpool pinning — keep engine threads and BLAS threads from
multiplying.

The panel engine parallelizes *across* the butterfly's row panels; the
``matmul`` each worker issues must therefore run single-threaded, or a
4-thread engine on a 4-core host would fan out into 16 runnable BLAS
threads and thrash (the oversubscription rule documented in
``docs/performance.md``: **pool workers × engine threads × BLAS threads
≤ cores**).

Two mechanisms, best available wins:

* `threadpoolctl <https://github.com/joblib/threadpoolctl>`_, when
  importable, limits the already-loaded BLAS at runtime — exact and
  reversible;
* otherwise the standard environment knobs (``OMP_NUM_THREADS``,
  ``OPENBLAS_NUM_THREADS``, …) are set.  These only bind when the BLAS
  initializes its pool *after* they are set, so the env fallback is
  applied eagerly by process-pool initializers (before workers import
  heavy kernels) and is best-effort inside an already-warm process.

No hard dependency is taken on ``threadpoolctl`` — the repo's only
runtime requirements stay NumPy + SciPy.
"""

from __future__ import annotations

import contextlib
import os
from collections.abc import Iterator

__all__ = [
    "BLAS_ENV_VARS",
    "have_threadpoolctl",
    "pin_blas_env",
    "blas_limit",
    "blas_thread_info",
]

#: The environment knobs honored by the common BLAS/OpenMP runtimes.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

try:  # pragma: no cover - exercised only where threadpoolctl exists
    import threadpoolctl as _threadpoolctl
except ImportError:  # the container image does not ship it
    _threadpoolctl = None


def have_threadpoolctl() -> bool:
    """Whether runtime (exact) BLAS limiting is available."""
    return _threadpoolctl is not None


def pin_blas_env(limit: int = 1, *, overwrite: bool = True) -> dict[str, str]:
    """Set the BLAS/OpenMP thread environment knobs to ``limit``.

    Returns the previous values of the variables that were changed (for
    callers that want to restore them).  Used by the worker-pool process
    initializer and the benchmarks so every measured kernel runs on a
    known BLAS thread budget.
    """
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    previous: dict[str, str] = {}
    for var in BLAS_ENV_VARS:
        if not overwrite and var in os.environ:
            continue
        if var in os.environ:
            previous[var] = os.environ[var]
        os.environ[var] = str(limit)
    return previous


@contextlib.contextmanager
def blas_limit(limit: int = 1) -> Iterator[bool]:
    """Scoped BLAS thread limit.

    Yields ``True`` when the limit is *exact* (threadpoolctl throttled
    the live BLAS pool) and ``False`` when only the best-effort env
    fallback applied.  Either way, prior state is restored on exit.
    """
    if _threadpoolctl is not None:  # pragma: no cover - env-dependent
        with _threadpoolctl.threadpool_limits(limits=limit):
            yield True
        return
    previous = pin_blas_env(limit)
    added = [v for v in BLAS_ENV_VARS if v not in previous]
    try:
        yield False
    finally:
        for var, val in previous.items():
            os.environ[var] = val
        for var in added:
            os.environ.pop(var, None)


def blas_thread_info() -> dict:
    """Host/BLAS threading metadata for benchmark provenance.

    Recorded into ``BENCH_parallel.json`` so a scaling curve can always
    be traced back to the thread budget it ran under.
    """
    info: dict = {
        "cpu_count": os.cpu_count(),
        "threadpoolctl": _threadpoolctl is not None,
        "env": {v: os.environ[v] for v in BLAS_ENV_VARS if v in os.environ},
    }
    if _threadpoolctl is not None:  # pragma: no cover - env-dependent
        try:
            info["pools"] = [
                {
                    "internal_api": p.get("internal_api"),
                    "num_threads": p.get("num_threads"),
                }
                for p in _threadpoolctl.threadpool_info()
            ]
        except Exception:  # noqa: BLE001 - provenance only, never fatal
            pass
    return info

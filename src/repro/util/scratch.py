"""Bounded, keyed scratch-buffer pool shared by the product kernels.

``Fmmp`` used to keep an unbounded-by-shape free list of scalar scratch
halves; with the batched and panel-parallel engines also wanting
reusable ``(N, B)`` blocks, an unkeyed pool would grow one entry per
distinct request shape and never shrink.  :class:`ScratchPool` bounds
both axes:

* **per key** — at most ``max_idle`` free buffers are retained for any
  ``(shape, dtype)``; surplus releases are dropped (garbage collected);
* **across keys** — at most ``max_keys`` distinct ``(shape, dtype)``
  free lists are retained; inserting a new key evicts the least
  recently *used* key's idle buffers (LRU on acquire/release order).

The pool only tracks *idle* buffers — arrays handed out by
:meth:`acquire` are owned by the caller until :meth:`release`; dropping
one on the floor simply lets the GC have it.  All operations are
lock-protected, so one pool instance may serve many engine threads
(the threaded stress test hammers exactly this).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["ScratchPool"]


class ScratchPool:
    """LRU-bounded free lists of reusable ``float64``-friendly buffers.

    Parameters
    ----------
    max_idle:
        Cap on idle buffers retained per ``(shape, dtype)`` key.
    max_keys:
        Cap on distinct keys with retained idle buffers; exceeding it
        evicts the least recently used key's whole free list.
    """

    def __init__(self, *, max_idle: int = 4, max_keys: int = 8):
        if max_idle < 1:
            raise ValidationError(f"max_idle must be >= 1, got {max_idle}")
        if max_keys < 1:
            raise ValidationError(f"max_keys must be >= 1, got {max_keys}")
        self.max_idle = int(max_idle)
        self.max_keys = int(max_keys)
        self._lock = threading.Lock()
        # key -> list of idle buffers; OrderedDict gives LRU key order.
        self._free: OrderedDict[tuple, list[np.ndarray]] = OrderedDict()

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _key(shape, dtype) -> tuple:
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        return (shape, np.dtype(dtype).str)

    def _touch(self, key: tuple) -> list[np.ndarray]:
        """Mark ``key`` most-recently-used, creating its free list (and
        evicting the LRU key past ``max_keys``).  Caller holds the lock."""
        if key in self._free:
            self._free.move_to_end(key)
        else:
            self._free[key] = []
            while len(self._free) > self.max_keys:
                self._free.popitem(last=False)  # evict LRU key's idle list
        return self._free[key]

    # -------------------------------------------------------------- public
    def acquire(self, shape, dtype=np.float64) -> np.ndarray:
        """Hand out a buffer of ``shape``/``dtype`` (reused when idle,
        freshly allocated on a miss)."""
        key = self._key(shape, dtype)
        with self._lock:
            bucket = self._touch(key)
            if bucket:
                return bucket.pop()
        return np.empty(key[0], dtype=np.dtype(dtype))

    def release(self, *arrays: np.ndarray) -> None:
        """Return buffers to the pool (surplus beyond ``max_idle`` per
        key is dropped)."""
        with self._lock:
            for arr in arrays:
                key = self._key(arr.shape, arr.dtype)
                bucket = self._touch(key)
                if len(bucket) < self.max_idle:
                    bucket.append(arr)

    def idle(self, shape=None, dtype=np.float64) -> int:
        """Idle-buffer count for one key (or the grand total)."""
        with self._lock:
            if shape is None:
                return sum(len(b) for b in self._free.values())
            bucket = self._free.get(self._key(shape, dtype))
            return len(bucket) if bucket else 0

    @property
    def keys(self) -> list[tuple]:
        """Retained ``(shape, dtype)`` keys, LRU first."""
        with self._lock:
            return list(self._free)

    def clear(self) -> None:
        with self._lock:
            self._free.clear()

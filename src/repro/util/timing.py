"""Wall-clock measurement helpers for the benchmark harness.

The paper reports single-core CPU times (Fig. 2) and end-to-end GPU times
(Fig. 3).  For the CPU measurements we follow the standard methodology from
the scientific-Python optimization literature: warm up once, repeat the
measurement several times, report the *median* (robust against OS jitter;
the minimum is also exposed for "best achievable" comparisons).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Timer", "median_time", "TimingResult"]


@dataclass
class TimingResult:
    """Result of a repeated timing run (all values in seconds)."""

    median: float
    minimum: float
    maximum: float
    repeats: int
    samples: list[float] = field(repr=False, default_factory=list)


class Timer:
    """Context-manager stopwatch based on :func:`time.perf_counter`.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def median_time(
    fn: Callable[[], object],
    *,
    repeats: int = 5,
    warmup: int = 1,
    min_time: float = 0.0,
) -> TimingResult:
    """Time ``fn()`` ``repeats`` times after ``warmup`` unmeasured calls.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is discarded.
    repeats:
        Number of measured samples (>= 1).
    warmup:
        Unmeasured calls executed first (cache/JIT warm-up).
    min_time:
        If the first measured sample is faster than this, the call is
        batched in an inner loop so each sample lasts at least
        ``min_time`` seconds; per-call time is reported.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(max(0, warmup)):
        fn()

    # Calibrate an inner-loop count so each sample is long enough to be
    # meaningful on a fast clock.
    inner = 1
    if min_time > 0.0:
        t0 = time.perf_counter()
        fn()
        single = time.perf_counter() - t0
        if single < min_time:
            inner = max(1, int(min_time / max(single, 1e-9)))

    samples: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - t0) / inner)

    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = 0.5 * (ordered[mid - 1] + ordered[mid])
    return TimingResult(
        median=median,
        minimum=ordered[0],
        maximum=ordered[-1],
        repeats=repeats,
        samples=samples,
    )

"""Small shared utilities: validation, binomials, timing, RNG plumbing."""

from repro.util.validation import (
    check_chain_length,
    check_error_rate,
    check_positive,
    check_power_of_two,
    check_probability_vector,
    check_vector,
)
from repro.util.binomial import binomial, binomial_row, log_binomial
from repro.util.timing import Timer, median_time
from repro.util.rng import as_generator
from repro.util.scratch import ScratchPool
from repro.util.blas import (
    blas_limit,
    blas_thread_info,
    have_threadpoolctl,
    pin_blas_env,
)

__all__ = [
    "check_chain_length",
    "check_error_rate",
    "check_positive",
    "check_power_of_two",
    "check_probability_vector",
    "check_vector",
    "binomial",
    "binomial_row",
    "log_binomial",
    "Timer",
    "median_time",
    "as_generator",
    "ScratchPool",
    "blas_limit",
    "blas_thread_info",
    "have_threadpoolctl",
    "pin_blas_env",
]

"""Exact binomial coefficients.

Error classes ``Γ_k`` contain ``C(ν, k)`` sequences (paper, Sec. 1.1) and
both the reduced mutation matrix (Eq. 14) and the recovery of cumulative
concentrations from the reduced eigenvector rescale by binomials.  Chain
lengths stay modest (ν ≤ a few hundred even in the structured solvers), so
exact integer arithmetic via :func:`math.comb` is both safe and fast; we
convert to ``float64`` only at the boundary.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["binomial", "binomial_row", "log_binomial"]


def binomial(n: int, k: int) -> int:
    """Exact binomial coefficient ``C(n, k)``; zero outside ``0 <= k <= n``."""
    if n < 0:
        raise ValidationError(f"binomial requires n >= 0, got n={n}")
    if k < 0 or k > n:
        return 0
    return math.comb(n, k)


def binomial_row(n: int) -> np.ndarray:
    """The full row ``[C(n,0), C(n,1), ..., C(n,n)]`` as ``float64``.

    For ``n <= 1028`` every entry is exactly representable is *not*
    guaranteed (C(1028,514) overflows float64), but for the chain lengths
    used here (``n <= 64``) the conversion is exact.
    """
    if n < 0:
        raise ValidationError(f"binomial_row requires n >= 0, got {n}")
    row = np.empty(n + 1, dtype=np.float64)
    c = 1
    for k in range(n + 1):
        row[k] = float(c)
        c = c * (n - k) // (k + 1)
    return row


def log_binomial(n: int, k: int) -> float:
    """Natural log of ``C(n, k)``; ``-inf`` outside the valid range.

    Used where products of binomials with tiny powers of ``p`` would
    underflow in linear space (very long chains in the reduced solver).
    """
    if n < 0:
        raise ValidationError(f"log_binomial requires n >= 0, got n={n}")
    if k < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)

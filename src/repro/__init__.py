"""repro — a fast solver for Eigen's quasispecies model of virus evolution.

Reproduction of G. Niederbrucker and W. N. Gansterer, *A Fast Solver for
Modeling the Evolution of Virus Populations*, SC'11.

Quick start
-----------
>>> from repro import QuasispeciesModel
>>> from repro.landscapes import SinglePeakLandscape
>>> model = QuasispeciesModel(SinglePeakLandscape(12, f_peak=2.0), p=0.01)
>>> result = model.solve()            # exact (nu+1) reduction, Sec. 5.1
>>> gamma = result.concentrations     # cumulative error-class concentrations

Package map
-----------
``repro.model``
    High-level API: :class:`QuasispeciesModel`, the replicator–mutator
    ODE, error-threshold sweeps.
``repro.operators``
    The implicit matvecs the paper compares: ``Fmmp`` (Sec. 2), the
    ``Xmvp(dmax)`` baseline ([10]), dense ``Smvp``.
``repro.solvers``
    Power iteration with the conservative shift (Sec. 3), Lanczos,
    shift-and-invert/RQI, the exact (ν+1) reduction (Sec. 5.1), the
    Kronecker decoupled solver (Sec. 5.2), dense baselines.
``repro.mutation`` / ``repro.landscapes``
    Mutation processes (uniform / per-site / grouped, Sec. 2.2) and
    fitness landscapes (single peak, linear, random Eq. 13, Kronecker).
``repro.transforms`` / ``repro.bitops``
    FWHT, butterfly, Kronecker matvec; Hamming/error-class machinery.
``repro.device``
    Simulated OpenCL-style runtime with hardware profiles (Sec. 4).
``repro.perf`` / ``repro.reporting``
    Cost models, measurement and extrapolation harness, experiment
    registry regenerating every figure of the paper.
"""

from repro._version import __version__
from repro.exceptions import (
    ConvergenceError,
    DeviceError,
    IncompatibleStructureError,
    ReproError,
    ValidationError,
)
from repro.model.quasispecies import QuasispeciesModel
from repro.solvers.result import SolveResult

__all__ = [
    "__version__",
    "QuasispeciesModel",
    "SolveResult",
    "ReproError",
    "ValidationError",
    "ConvergenceError",
    "IncompatibleStructureError",
    "DeviceError",
]
